//! Direct-mapped DRAM cache — the hardware behind Intel Optane "Memory
//! Mode" (§2.4).
//!
//! In memory mode the processor treats all of DRAM as a direct-mapped,
//! 64 B-line cache in front of NVM. Simulating a tag per 64 B line of a
//! 192 GB cache would need gigabytes of tag state, so we use *set
//! sampling*: with a sampling factor `F = 2^shift` we coarsen lines by `F`
//! (equivalently: simulate a direct-mapped cache with the same capacity
//! but `F`-times larger blocks). Under the random-dominated access
//! patterns of the evaluation this preserves the set-occupancy ratio
//! (working-set lines per set), and therefore the hit/conflict-miss
//! behaviour, while shrinking tag state by `F`. Each simulated access
//! represents `F` real accesses; callers scale traffic accordingly via
//! [`DramCache::scale`].

/// Configuration of the DRAM cache.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DramCacheConfig {
    /// DRAM capacity acting as the cache, bytes.
    pub dram_bytes: u64,
    /// Cache line size, bytes (64 for memory mode).
    pub line_size: u64,
    /// Set-sampling factor exponent: simulate `1 / 2^shift` of the sets.
    /// Zero simulates the cache exactly.
    pub sample_shift: u32,
}

impl DramCacheConfig {
    /// Memory-mode cache over `dram_bytes` of DRAM with a default sampling
    /// factor suitable for terabyte-scale experiments.
    pub fn memory_mode(dram_bytes: u64) -> DramCacheConfig {
        DramCacheConfig {
            dram_bytes,
            line_size: 64,
            sample_shift: 12,
        }
    }
}

/// Outcome of one (sampled) cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present in DRAM.
    Hit,
    /// Line absent; served from NVM and filled into DRAM.
    Miss {
        /// Whether the victim line was dirty and must be written back.
        dirty_evict: bool,
    },
}

/// Cumulative (sampled) counters; multiply by [`DramCache::scale`] to
/// estimate real traffic.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Sampled hits.
    pub hits: u64,
    /// Sampled misses.
    pub misses: u64,
    /// Sampled dirty evictions (each is an NVM line write-back).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit ratio over all sampled accesses, or 1.0 if none.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const VALID: u64 = 1;
const DIRTY: u64 = 2;
const TAG_SHIFT: u64 = 2;

/// Set-sampled direct-mapped cache.
#[derive(Debug, Clone)]
pub struct DramCache {
    config: DramCacheConfig,
    /// Packed entries: `tag << 2 | dirty << 1 | valid`.
    sets: Vec<u64>,
    stats: CacheStats,
    line_shift: u32,
}

impl DramCache {
    /// Builds the cache; tag state is `dram_bytes / line_size / 2^shift`
    /// entries.
    pub fn new(config: DramCacheConfig) -> DramCache {
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.dram_bytes >= config.line_size << config.sample_shift,
            "cache smaller than one sampled set"
        );
        let n_sets = (config.dram_bytes / config.line_size) >> config.sample_shift;
        let line_shift = config.line_size.trailing_zeros();
        DramCache {
            sets: vec![0; n_sets as usize],
            stats: CacheStats::default(),
            line_shift,
            config,
        }
    }

    /// The number of real accesses each sampled access represents.
    pub fn scale(&self) -> u64 {
        1 << self.config.sample_shift
    }

    /// The sampling-shift exponent.
    pub fn config_shift(&self) -> u32 {
        self.config.sample_shift
    }

    /// Number of simulated sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Sampled counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.config.line_size
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        // Coarsened line number: F physical lines collapse into one
        // sampled line, preserving lines-per-set occupancy.
        let line = addr >> (self.line_shift + self.config.sample_shift);
        // Fibonacci hash spreads structured (per-thread-partition) address
        // patterns over sets, approximating the scatter that page-granular
        // physical allocation over the whole NVM range produces. The *high*
        // multiplier bits must be used: an odd multiplier is bijective
        // modulo a power of two, which would make the mapping conflict-free.
        let h = line.wrapping_mul(0x9E3779B97F4A7C15) >> 24;
        let set = (h % self.sets.len() as u64) as usize;
        (set, line)
    }

    /// Performs one sampled access at byte address `addr`.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        let (set, tag) = self.index(addr);
        let entry = &mut self.sets[set];
        let valid = *entry & VALID != 0;
        let cur_tag = *entry >> TAG_SHIFT;
        if valid && cur_tag == tag {
            self.stats.hits += 1;
            if is_write {
                *entry |= DIRTY;
            }
            return CacheOutcome::Hit;
        }
        let dirty_evict = valid && (*entry & DIRTY != 0);
        if dirty_evict {
            self.stats.dirty_evictions += 1;
        }
        self.stats.misses += 1;
        *entry = (tag << TAG_SHIFT) | VALID | if is_write { DIRTY } else { 0 };
        CacheOutcome::Miss { dirty_evict }
    }

    /// Clears all cached lines and counters.
    pub fn reset(&mut self) {
        self.sets.fill(0);
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_sim::Rng;

    fn exact_cache(lines: u64) -> DramCache {
        DramCache::new(DramCacheConfig {
            dram_bytes: lines * 64,
            line_size: 64,
            sample_shift: 0,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = exact_cache(1024);
        assert!(matches!(c.access(0x1000, false), CacheOutcome::Miss { .. }));
        assert_eq!(c.access(0x1000, false), CacheOutcome::Hit);
        assert_eq!(c.access(0x1008, false), CacheOutcome::Hit, "same line");
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = exact_cache(4);
        // Find two addresses mapping to the same set.
        let (set0, _) = c.index(0);
        let conflict = (1..10_000u64)
            .map(|i| i * 64)
            .find(|&a| c.index(a).0 == set0)
            .expect("conflicting address exists");
        c.access(0, true); // miss, fill dirty
        match c.access(conflict, false) {
            CacheOutcome::Miss { dirty_evict } => assert!(dirty_evict),
            CacheOutcome::Hit => panic!("expected conflict miss"),
        }
        // Victim was clean this time.
        match c.access(0, false) {
            CacheOutcome::Miss { dirty_evict } => assert!(!dirty_evict),
            CacheOutcome::Hit => panic!("expected conflict miss"),
        }
    }

    #[test]
    fn hit_ratio_tracks_working_set_ratio() {
        // Direct-mapped cache of C lines under uniform random access over W
        // lines: steady-state hit ratio ~ sum over occupancy; empirically
        // close to C/W for W >> C.
        let mut c = exact_cache(1 << 10);
        let mut rng = Rng::new(1);
        let w_lines = 1u64 << 13; // 8x capacity
        for _ in 0..400_000 {
            let line = rng.gen_range(w_lines);
            c.access(line * 64, false);
        }
        let hr = c.stats().hit_ratio();
        let expect = (1u64 << 10) as f64 / w_lines as f64;
        assert!(
            (hr - expect).abs() < 0.02,
            "hit ratio {hr}, expected ~{expect}"
        );
    }

    #[test]
    fn small_working_set_mostly_hits_with_some_conflicts() {
        let mut c = exact_cache(1 << 12);
        let mut rng = Rng::new(2);
        let w_lines = 1u64 << 10; // quarter of capacity
        for _ in 0..200_000 {
            let line = rng.gen_range(w_lines);
            c.access(line * 64, false);
        }
        let hr = c.stats().hit_ratio();
        // Poisson conflict estimate: some misses even though W < C.
        assert!(hr > 0.85 && hr < 1.0, "hit ratio {hr}");
    }

    #[test]
    fn sampled_cache_matches_exact_hit_ratio() {
        // The sampled cache (shift=4) must reproduce the exact cache's hit
        // ratio for uniform random traffic over the same footprint.
        let mut exact = exact_cache(1 << 12);
        let mut sampled = DramCache::new(DramCacheConfig {
            dram_bytes: (1 << 12) * 64,
            line_size: 64,
            sample_shift: 4,
        });
        assert_eq!(sampled.n_sets(), 1 << 8);
        let mut rng = Rng::new(3);
        let w_bytes = (1u64 << 14) * 64;
        for _ in 0..400_000 {
            let addr = rng.gen_range(w_bytes) & !63;
            exact.access(addr, false);
            sampled.access(addr, false);
        }
        let he = exact.stats().hit_ratio();
        let hs = sampled.stats().hit_ratio();
        assert!((he - hs).abs() < 0.03, "exact {he} vs sampled {hs}");
    }

    #[test]
    fn scale_reflects_shift() {
        let c = DramCache::new(DramCacheConfig {
            dram_bytes: 1 << 20,
            line_size: 64,
            sample_shift: 6,
        });
        assert_eq!(c.scale(), 64);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = exact_cache(16);
        c.access(0, true);
        c.reset();
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
    }
}
