//! User-space client API of the extended `ioatdma` kernel driver (§3.2).
//!
//! The paper extends the Linux I/OAT driver with an `ioctl`-based copy
//! interface so multiple processes can share the DMA engine safely:
//! channels are allocated and released per process, copy requests carry
//! user virtual addresses, and up to 32 requests batch into one system
//! call. This module models that interface on top of [`crate::DmaEngine`].
//! The engine owns the channel-allocation state (as the kernel driver
//! does); a client only remembers which channels it holds, so two clients
//! of the same engine can never be handed the same channel.

use hemem_sim::Ns;

use crate::dma::DmaEngine;
pub use crate::dma::{ChannelId, DmaError};

/// One copy request: source/destination user virtual addresses + length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRequest {
    /// Source user virtual address.
    pub src: u64,
    /// Destination user virtual address.
    pub dst: u64,
    /// Bytes to copy.
    pub len: u64,
}

/// Per-process view of the shared DMA engine.
///
/// Mirrors the paper's ioctl surface: `alloc_channel` / `free_channel` /
/// batched `copy`.
#[derive(Debug, Default)]
pub struct DmaClient {
    held: Vec<ChannelId>,
}

impl DmaClient {
    /// Opens the driver (no channels held yet).
    pub fn new() -> DmaClient {
        DmaClient { held: Vec::new() }
    }

    /// Channels currently held by this client.
    pub fn channels(&self) -> &[ChannelId] {
        &self.held
    }

    /// Allocates one channel from the engine (the `DMA_ALLOC_CHANNEL`
    /// ioctl).
    pub fn alloc_channel(&mut self, engine: &mut DmaEngine) -> Result<ChannelId, DmaError> {
        let id = engine.alloc_channel()?;
        self.held.push(id);
        Ok(id)
    }

    /// Releases one of this client's channels back to the engine (the
    /// `DMA_FREE_CHANNEL` ioctl).
    pub fn free_channel(&mut self, engine: &mut DmaEngine, id: ChannelId) -> Result<(), DmaError> {
        let pos = self
            .held
            .iter()
            .position(|&c| c == id)
            .ok_or(DmaError::BadChannel)?;
        engine.free_channel(id)?;
        self.held.remove(pos);
        Ok(())
    }

    /// Submits a batch of copies striped over this client's channels (the
    /// batched `DMA_COPY` ioctl; up to [`crate::DmaConfig::max_batch`]
    /// requests per call). Returns the completion time of the batch.
    /// Batch-size and length validation happens in [`DmaEngine::submit`],
    /// the single checkpoint shared by every submission path.
    pub fn copy(
        &self,
        engine: &mut DmaEngine,
        now: Ns,
        requests: &[CopyRequest],
    ) -> Result<Ns, DmaError> {
        if self.held.is_empty() {
            return Err(DmaError::BadChannel);
        }
        let sizes: Vec<u64> = requests.iter().map(|r| r.len).collect();
        engine.submit(now, &sizes, self.held.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaConfig;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaConfig::ioat())
    }

    fn req(len: u64) -> CopyRequest {
        CopyRequest {
            src: 0x1000,
            dst: 0x2000,
            len,
        }
    }

    #[test]
    fn channel_allocation_round_trip() {
        let mut e = engine();
        let mut c = DmaClient::new();
        let a = c.alloc_channel(&mut e).expect("channel");
        let b = c.alloc_channel(&mut e).expect("channel");
        assert_ne!(a, b);
        assert_eq!(c.channels().len(), 2);
        c.free_channel(&mut e, a).expect("free");
        assert_eq!(c.channels(), &[b]);
        // Freed channel is reusable.
        let a2 = c.alloc_channel(&mut e).expect("channel");
        assert_eq!(a2, a);
    }

    #[test]
    fn channels_are_finite() {
        let mut e = engine();
        let mut c = DmaClient::new();
        for _ in 0..e.config().channels {
            c.alloc_channel(&mut e).expect("channel");
        }
        assert_eq!(c.alloc_channel(&mut e), Err(DmaError::NoChannelsAvailable));
    }

    #[test]
    fn two_clients_share_one_channel_space() {
        let mut e = engine();
        let mut c1 = DmaClient::new();
        let mut c2 = DmaClient::new();
        let a = c1.alloc_channel(&mut e).expect("channel");
        let b = c2.alloc_channel(&mut e).expect("channel");
        assert_ne!(a, b, "engine must not hand the same channel to two clients");
        assert_eq!(e.allocated_channels(), 2);
        // One client cannot free another's channel.
        assert_eq!(c2.free_channel(&mut e, a), Err(DmaError::BadChannel));
        assert!(c2.channels().contains(&b));
    }

    #[test]
    fn free_of_unheld_channel_fails() {
        let mut e = engine();
        let mut c = DmaClient::new();
        assert_eq!(
            c.free_channel(&mut e, ChannelId(0)),
            Err(DmaError::BadChannel)
        );
    }

    #[test]
    fn copy_requires_a_channel() {
        let mut e = engine();
        let c = DmaClient::new();
        assert_eq!(
            c.copy(&mut e, Ns::ZERO, &[req(4096)]),
            Err(DmaError::BadChannel)
        );
    }

    #[test]
    fn copy_batches_and_completes() {
        let mut e = engine();
        let mut c = DmaClient::new();
        c.alloc_channel(&mut e).expect("channel");
        c.alloc_channel(&mut e).expect("channel");
        let reqs = vec![req(2 << 20); 4];
        let done = c.copy(&mut e, Ns::ZERO, &reqs).expect("copy");
        assert!(done > Ns::ZERO);
        assert_eq!(e.stats().copies, 4);
        assert_eq!(e.stats().ioctls, 1);
    }

    #[test]
    fn oversized_batches_rejected_with_limit() {
        let mut e = engine();
        let mut c = DmaClient::new();
        c.alloc_channel(&mut e).expect("channel");
        let reqs = vec![req(64); 33];
        assert_eq!(
            c.copy(&mut e, Ns::ZERO, &reqs),
            Err(DmaError::BatchTooLarge { got: 33, max: 32 })
        );
    }

    #[test]
    fn zero_length_copy_rejected() {
        let mut e = engine();
        let mut c = DmaClient::new();
        c.alloc_channel(&mut e).expect("channel");
        assert_eq!(
            c.copy(&mut e, Ns::ZERO, &[req(0)]),
            Err(DmaError::EmptyCopy)
        );
    }

    #[test]
    fn error_messages_render() {
        assert_eq!(
            DmaError::NoChannelsAvailable.to_string(),
            "no DMA channels available"
        );
        assert!(DmaError::BatchTooLarge { got: 40, max: 32 }
            .to_string()
            .contains("40"));
        assert!(DmaError::BadChannelCount { got: 9, have: 8 }
            .to_string()
            .contains("9"));
    }
}
