//! User-space client API of the extended `ioatdma` kernel driver (§3.2).
//!
//! The paper extends the Linux I/OAT driver with an `ioctl`-based copy
//! interface so multiple processes can share the DMA engine safely:
//! channels are allocated and released per process, copy requests carry
//! user virtual addresses, and up to 32 requests batch into one system
//! call. This module models that interface on top of [`crate::DmaEngine`]
//! — channel accounting, per-call overhead, batching limits — and is what
//! HeMem's migration path would link against on real hardware.

use hemem_sim::Ns;

use crate::dma::DmaEngine;

/// One copy request: source/destination user virtual addresses + length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRequest {
    /// Source user virtual address.
    pub src: u64,
    /// Destination user virtual address.
    pub dst: u64,
    /// Bytes to copy.
    pub len: u64,
}

/// Errors surfaced by the driver interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// All hardware channels are allocated to clients.
    NoChannelsAvailable,
    /// The channel id is not allocated to this client.
    BadChannel,
    /// More requests than the driver's batch limit.
    BatchTooLarge {
        /// Requests submitted.
        got: usize,
        /// Driver maximum per ioctl.
        max: usize,
    },
    /// A request had zero length (rejected, matching the driver).
    EmptyCopy,
}

impl core::fmt::Display for DmaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DmaError::NoChannelsAvailable => write!(f, "no DMA channels available"),
            DmaError::BadChannel => write!(f, "channel not allocated to this client"),
            DmaError::BatchTooLarge { got, max } => {
                write!(f, "batch of {got} exceeds driver limit of {max}")
            }
            DmaError::EmptyCopy => write!(f, "zero-length copy request"),
        }
    }
}

impl std::error::Error for DmaError {}

/// A client-held DMA channel id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub u32);

/// Per-process view of the shared DMA engine.
///
/// Mirrors the paper's ioctl surface: `alloc_channel` / `free_channel` /
/// batched `copy`.
#[derive(Debug)]
pub struct DmaClient {
    held: Vec<ChannelId>,
    total_channels: u32,
    allocated_mask: u64,
}

impl DmaClient {
    /// Opens the driver (no channels held yet).
    pub fn new(engine: &DmaEngine) -> DmaClient {
        DmaClient {
            held: Vec::new(),
            total_channels: engine.config().channels,
            allocated_mask: 0,
        }
    }

    /// Channels currently held by this client.
    pub fn channels(&self) -> &[ChannelId] {
        &self.held
    }

    /// Allocates one channel (the `DMA_ALLOC_CHANNEL` ioctl).
    pub fn alloc_channel(&mut self) -> Result<ChannelId, DmaError> {
        for i in 0..self.total_channels {
            if self.allocated_mask & (1 << i) == 0 {
                self.allocated_mask |= 1 << i;
                let id = ChannelId(i);
                self.held.push(id);
                return Ok(id);
            }
        }
        Err(DmaError::NoChannelsAvailable)
    }

    /// Releases a channel (the `DMA_FREE_CHANNEL` ioctl).
    pub fn free_channel(&mut self, id: ChannelId) -> Result<(), DmaError> {
        let pos = self
            .held
            .iter()
            .position(|&c| c == id)
            .ok_or(DmaError::BadChannel)?;
        self.held.remove(pos);
        self.allocated_mask &= !(1 << id.0);
        Ok(())
    }

    /// Submits a batch of copies striped over this client's channels (the
    /// batched `DMA_COPY` ioctl; up to [`crate::DmaConfig::max_batch`]
    /// requests per call). Returns the completion time of the batch.
    pub fn copy(
        &self,
        engine: &mut DmaEngine,
        now: Ns,
        requests: &[CopyRequest],
    ) -> Result<Ns, DmaError> {
        if self.held.is_empty() {
            return Err(DmaError::BadChannel);
        }
        let max = engine.config().max_batch;
        if requests.len() > max {
            return Err(DmaError::BatchTooLarge {
                got: requests.len(),
                max,
            });
        }
        if requests.iter().any(|r| r.len == 0) {
            return Err(DmaError::EmptyCopy);
        }
        let sizes: Vec<u64> = requests.iter().map(|r| r.len).collect();
        Ok(engine.submit(now, &sizes, self.held.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaConfig;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaConfig::ioat())
    }

    fn req(len: u64) -> CopyRequest {
        CopyRequest {
            src: 0x1000,
            dst: 0x2000,
            len,
        }
    }

    #[test]
    fn channel_allocation_round_trip() {
        let e = engine();
        let mut c = DmaClient::new(&e);
        let a = c.alloc_channel().expect("channel");
        let b = c.alloc_channel().expect("channel");
        assert_ne!(a, b);
        assert_eq!(c.channels().len(), 2);
        c.free_channel(a).expect("free");
        assert_eq!(c.channels(), &[b]);
        // Freed channel is reusable.
        let a2 = c.alloc_channel().expect("channel");
        assert_eq!(a2, a);
    }

    #[test]
    fn channels_are_finite() {
        let e = engine();
        let mut c = DmaClient::new(&e);
        for _ in 0..e.config().channels {
            c.alloc_channel().expect("channel");
        }
        assert_eq!(c.alloc_channel(), Err(DmaError::NoChannelsAvailable));
    }

    #[test]
    fn free_of_unheld_channel_fails() {
        let e = engine();
        let mut c = DmaClient::new(&e);
        assert_eq!(c.free_channel(ChannelId(0)), Err(DmaError::BadChannel));
    }

    #[test]
    fn copy_requires_a_channel() {
        let mut e = engine();
        let c = DmaClient::new(&e);
        assert_eq!(
            c.copy(&mut e, Ns::ZERO, &[req(4096)]),
            Err(DmaError::BadChannel)
        );
    }

    #[test]
    fn copy_batches_and_completes() {
        let mut e = engine();
        let mut c = DmaClient::new(&e);
        c.alloc_channel().expect("channel");
        c.alloc_channel().expect("channel");
        let reqs = vec![req(2 << 20); 4];
        let done = c.copy(&mut e, Ns::ZERO, &reqs).expect("copy");
        assert!(done > Ns::ZERO);
        assert_eq!(e.stats().copies, 4);
        assert_eq!(e.stats().ioctls, 1);
    }

    #[test]
    fn oversized_batches_rejected_with_limit() {
        let mut e = engine();
        let mut c = DmaClient::new(&e);
        c.alloc_channel().expect("channel");
        let reqs = vec![req(64); 33];
        assert_eq!(
            c.copy(&mut e, Ns::ZERO, &reqs),
            Err(DmaError::BatchTooLarge { got: 33, max: 32 })
        );
    }

    #[test]
    fn zero_length_copy_rejected() {
        let mut e = engine();
        let mut c = DmaClient::new(&e);
        c.alloc_channel().expect("channel");
        assert_eq!(
            c.copy(&mut e, Ns::ZERO, &[req(0)]),
            Err(DmaError::EmptyCopy)
        );
    }

    #[test]
    fn error_messages_render() {
        assert_eq!(
            DmaError::NoChannelsAvailable.to_string(),
            "no DMA channels available"
        );
        assert!(DmaError::BatchTooLarge { got: 40, max: 32 }
            .to_string()
            .contains("40"));
    }
}
