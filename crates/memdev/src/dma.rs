//! I/OAT-style DMA copy engine model.
//!
//! HeMem offloads page migration to the platform's I/OAT DMA engine via a
//! batched `ioctl` API (§3.2): up to 32 copy requests per call, spread
//! over a configurable set of channels. The paper finds batches of 4 on 2
//! concurrent channels fastest on their system; those are the defaults.
//! Channel time modelled here covers the engine's descriptor processing;
//! the actual byte movement must additionally be reserved on the source
//! and destination [`crate::Device`]s by the caller.

use hemem_sim::Ns;

/// Static DMA engine parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DmaConfig {
    /// Number of hardware channels available.
    pub channels: u32,
    /// Per-channel copy bandwidth, bytes/second.
    pub per_channel_bw: f64,
    /// Kernel-crossing cost of one batched copy `ioctl`.
    pub ioctl_overhead: Ns,
    /// Maximum copy requests accepted per `ioctl`.
    pub max_batch: usize,
}

impl DmaConfig {
    /// The evaluation platform's I/OAT engine.
    pub fn ioat() -> DmaConfig {
        DmaConfig {
            channels: 8,
            per_channel_bw: 6.0e9,
            ioctl_overhead: Ns::micros(2),
            max_batch: 32,
        }
    }
}

/// Cumulative DMA statistics.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct DmaStats {
    /// Bytes copied.
    pub bytes_copied: u64,
    /// Copy requests completed.
    pub copies: u64,
    /// Batched ioctl calls issued.
    pub ioctls: u64,
}

/// Runtime DMA engine state.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    config: DmaConfig,
    chan_free: Vec<Ns>,
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new(config: DmaConfig) -> DmaEngine {
        let chan_free = vec![Ns::ZERO; config.channels as usize];
        DmaEngine {
            config,
            chan_free,
            stats: DmaStats::default(),
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DmaStats {
        &self.stats
    }

    /// Submits one batched copy `ioctl` using `n_channels` channels.
    ///
    /// Returns the completion time of the whole batch. Copies are assigned
    /// round-robin to the least-loaded of the selected channels, matching
    /// the driver's striping.
    ///
    /// # Panics
    ///
    /// Panics if the batch exceeds [`DmaConfig::max_batch`] or requests
    /// more channels than the engine has.
    pub fn submit(&mut self, now: Ns, copy_sizes: &[u64], n_channels: usize) -> Ns {
        assert!(
            copy_sizes.len() <= self.config.max_batch,
            "batch of {} exceeds max {}",
            copy_sizes.len(),
            self.config.max_batch
        );
        assert!(
            n_channels >= 1 && n_channels <= self.chan_free.len(),
            "invalid channel count {n_channels}"
        );
        let start = now + self.config.ioctl_overhead;
        self.stats.ioctls += 1;
        let mut completion = start;
        for (i, &bytes) in copy_sizes.iter().enumerate() {
            let chan = i % n_channels;
            let service = Ns::from_secs_f64(bytes as f64 / self.config.per_channel_bw);
            let begin = start.max(self.chan_free[chan]);
            let done = begin + service;
            self.chan_free[chan] = done;
            completion = completion.max(done);
            self.stats.bytes_copied += bytes;
            self.stats.copies += 1;
        }
        completion
    }

    /// Aggregate copy bandwidth when using `n_channels` channels.
    pub fn bandwidth(&self, n_channels: usize) -> f64 {
        self.config.per_channel_bw * n_channels.min(self.chan_free.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn single_copy_timing() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let done = dma.submit(Ns::ZERO, &[6 * 1_000_000_000 / 1000], 1);
        // 6 MB-ish at 6 GB/s = 1 ms, plus 2 us ioctl.
        let expect = Ns::millis(1) + Ns::micros(2);
        let diff = done.as_nanos().abs_diff(expect.as_nanos());
        assert!(diff < 1_000, "done {done} expect {expect}");
    }

    #[test]
    fn two_channels_halve_batch_time() {
        let mut one = DmaEngine::new(DmaConfig::ioat());
        let mut two = DmaEngine::new(DmaConfig::ioat());
        let batch = [2 * MB, 2 * MB, 2 * MB, 2 * MB];
        let t1 = one.submit(Ns::ZERO, &batch, 1);
        let t2 = two.submit(Ns::ZERO, &batch, 2);
        let r = t1.as_nanos() as f64 / t2.as_nanos() as f64;
        assert!((r - 2.0).abs() < 0.05, "speedup {r}");
    }

    #[test]
    fn backlog_carries_across_batches() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let t1 = dma.submit(Ns::ZERO, &[64 * MB], 1);
        let t2 = dma.submit(Ns::ZERO, &[64 * MB], 1);
        assert!(t2 > t1, "second batch must queue behind the first");
        assert!(t2.as_nanos() >= 2 * (t1.as_nanos() - 4_000));
    }

    #[test]
    fn stats_accumulate() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        dma.submit(Ns::ZERO, &[MB, MB], 2);
        dma.submit(Ns::ZERO, &[MB], 1);
        assert_eq!(dma.stats().copies, 3);
        assert_eq!(dma.stats().ioctls, 2);
        assert_eq!(dma.stats().bytes_copied, 3 * MB);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversized_batch_rejected() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let batch = vec![1u64; 33];
        dma.submit(Ns::ZERO, &batch, 1);
    }

    #[test]
    fn bandwidth_scales_with_channels() {
        let dma = DmaEngine::new(DmaConfig::ioat());
        assert_eq!(dma.bandwidth(2), 12.0e9);
        assert_eq!(dma.bandwidth(100), 48.0e9, "clamped to available channels");
    }
}
