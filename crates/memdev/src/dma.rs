//! I/OAT-style DMA copy engine model.
//!
//! HeMem offloads page migration to the platform's I/OAT DMA engine via a
//! batched `ioctl` API (§3.2): up to 32 copy requests per call, spread
//! over a configurable set of channels. The paper finds batches of 4 on 2
//! concurrent channels fastest on their system; those are the defaults.
//! Channel time modelled here covers the engine's descriptor processing;
//! the actual byte movement must additionally be reserved on the source
//! and destination [`crate::Device`]s by the caller.
//!
//! The engine owns channel allocation (which hardware channels are handed
//! out to which client) so that multiple [`crate::DmaClient`]s sharing it
//! cannot double-allocate a channel, and it tracks submission failures so
//! callers can detect a dead engine and fall back to copy threads, as
//! HeMem does when the I/OAT driver is unavailable.

use hemem_sim::Ns;

/// Static DMA engine parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DmaConfig {
    /// Number of hardware channels available.
    pub channels: u32,
    /// Per-channel copy bandwidth, bytes/second.
    pub per_channel_bw: f64,
    /// Kernel-crossing cost of one batched copy `ioctl`.
    pub ioctl_overhead: Ns,
    /// Maximum copy requests accepted per `ioctl`.
    pub max_batch: usize,
    /// Consecutive submission failures after which the engine reports
    /// itself [`DmaEngine::degraded`] and callers should stop offloading.
    pub degrade_after: u32,
    /// While degraded, probe the engine with a real submission once every
    /// this many would-be offloads (a successful probe closes the breaker
    /// and resumes offloading). `0` disables probing: once degraded, the
    /// engine stays degraded — the historical behaviour and the default.
    #[serde(default)]
    pub probe_after: u32,
}

impl DmaConfig {
    /// The evaluation platform's I/OAT engine.
    pub fn ioat() -> DmaConfig {
        DmaConfig {
            channels: 8,
            per_channel_bw: 6.0e9,
            ioctl_overhead: Ns::micros(2),
            max_batch: 32,
            degrade_after: 8,
            probe_after: 0,
        }
    }
}

/// Errors surfaced by the DMA engine and its driver interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// All hardware channels are allocated to clients.
    NoChannelsAvailable,
    /// The channel id is not allocated to the caller.
    BadChannel,
    /// A submission asked for an impossible channel count.
    BadChannelCount {
        /// Channels requested.
        got: usize,
        /// Channels the engine has.
        have: usize,
    },
    /// More requests than the driver's batch limit.
    BatchTooLarge {
        /// Requests submitted.
        got: usize,
        /// Driver maximum per ioctl.
        max: usize,
    },
    /// A request had zero length (rejected, matching the driver).
    EmptyCopy,
    /// The engine failed the submission (injected hardware/driver fault).
    DeviceFailure,
    /// The configuration asks for more channels than the engine's channel
    /// mask can represent.
    TooManyChannels {
        /// Channels requested.
        got: u32,
        /// Representable maximum.
        max: u32,
    },
}

impl core::fmt::Display for DmaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DmaError::NoChannelsAvailable => write!(f, "no DMA channels available"),
            DmaError::BadChannel => write!(f, "channel not allocated to this client"),
            DmaError::BadChannelCount { got, have } => {
                write!(f, "requested {got} channels, engine has {have}")
            }
            DmaError::BatchTooLarge { got, max } => {
                write!(f, "batch of {got} exceeds driver limit of {max}")
            }
            DmaError::EmptyCopy => write!(f, "zero-length copy request"),
            DmaError::DeviceFailure => write!(f, "DMA engine failed the submission"),
            DmaError::TooManyChannels { got, max } => {
                write!(
                    f,
                    "channel mask holds at most {max} channels, asked for {got}"
                )
            }
        }
    }
}

impl std::error::Error for DmaError {}

/// An allocated DMA channel id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub u32);

/// Cumulative DMA statistics.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct DmaStats {
    /// Bytes copied.
    pub bytes_copied: u64,
    /// Copy requests completed.
    pub copies: u64,
    /// Batched ioctl calls issued successfully.
    pub ioctls: u64,
    /// Submissions that failed (injected engine faults).
    pub failed_ioctls: u64,
}

/// Runtime DMA engine state.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    config: DmaConfig,
    chan_free: Vec<Ns>,
    /// Bitmask of channels handed out to clients. The engine — not each
    /// client — owns this, so clients sharing the engine see one another's
    /// allocations, matching the kernel driver.
    allocated_mask: u64,
    consecutive_failures: u32,
    fallbacks_since_probe: u32,
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics on a configuration [`DmaEngine::try_new`] rejects.
    pub fn new(config: DmaConfig) -> DmaEngine {
        DmaEngine::try_new(config).expect("channel mask holds at most 64 channels")
    }

    /// Fallible constructor: rejects configurations whose channel count
    /// cannot be represented in the allocation mask.
    pub fn try_new(config: DmaConfig) -> Result<DmaEngine, DmaError> {
        if config.channels > u64::BITS {
            return Err(DmaError::TooManyChannels {
                got: config.channels,
                max: u64::BITS,
            });
        }
        let chan_free = vec![Ns::ZERO; config.channels as usize];
        Ok(DmaEngine {
            config,
            chan_free,
            allocated_mask: 0,
            consecutive_failures: 0,
            fallbacks_since_probe: 0,
            stats: DmaStats::default(),
        })
    }

    /// Engine configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DmaStats {
        &self.stats
    }

    /// Number of channels currently allocated to clients.
    pub fn allocated_channels(&self) -> u32 {
        self.allocated_mask.count_ones()
    }

    /// Allocates the lowest free channel (the `DMA_ALLOC_CHANNEL` ioctl).
    pub fn alloc_channel(&mut self) -> Result<ChannelId, DmaError> {
        for i in 0..self.config.channels {
            if self.allocated_mask & (1 << i) == 0 {
                self.allocated_mask |= 1 << i;
                return Ok(ChannelId(i));
            }
        }
        Err(DmaError::NoChannelsAvailable)
    }

    /// Releases an allocated channel (the `DMA_FREE_CHANNEL` ioctl).
    pub fn free_channel(&mut self, id: ChannelId) -> Result<(), DmaError> {
        if id.0 >= self.config.channels || self.allocated_mask & (1 << id.0) == 0 {
            return Err(DmaError::BadChannel);
        }
        self.allocated_mask &= !(1 << id.0);
        Ok(())
    }

    /// Validates a batch before submission: the single checkpoint for
    /// batch size, channel count, and copy lengths.
    fn validate(&self, copy_sizes: &[u64], n_channels: usize) -> Result<(), DmaError> {
        if copy_sizes.len() > self.config.max_batch {
            return Err(DmaError::BatchTooLarge {
                got: copy_sizes.len(),
                max: self.config.max_batch,
            });
        }
        if n_channels == 0 || n_channels > self.chan_free.len() {
            return Err(DmaError::BadChannelCount {
                got: n_channels,
                have: self.chan_free.len(),
            });
        }
        if copy_sizes.contains(&0) {
            return Err(DmaError::EmptyCopy);
        }
        Ok(())
    }

    /// Submits one batched copy `ioctl` using `n_channels` channels.
    ///
    /// Returns the completion time of the whole batch, or an error if the
    /// batch exceeds [`DmaConfig::max_batch`], requests an impossible
    /// channel count, or contains a zero-length copy. Copies are assigned
    /// round-robin to the selected channels, matching the driver's
    /// striping. A successful submission clears the consecutive-failure
    /// counter feeding [`DmaEngine::degraded`].
    pub fn submit(
        &mut self,
        now: Ns,
        copy_sizes: &[u64],
        n_channels: usize,
    ) -> Result<Ns, DmaError> {
        self.validate(copy_sizes, n_channels)?;
        let start = now + self.config.ioctl_overhead;
        self.stats.ioctls += 1;
        self.consecutive_failures = 0;
        let mut completion = start;
        for (i, &bytes) in copy_sizes.iter().enumerate() {
            let chan = i % n_channels;
            let service = Ns::from_secs_f64(bytes as f64 / self.config.per_channel_bw);
            let begin = start.max(self.chan_free[chan]);
            let done = begin + service;
            self.chan_free[chan] = done;
            completion = completion.max(done);
            self.stats.bytes_copied += bytes;
            self.stats.copies += 1;
        }
        Ok(completion)
    }

    /// Records a failed submission (fault injection reports failures from
    /// outside the engine). Feeds the [`DmaEngine::degraded`] breaker.
    pub fn note_submit_failure(&mut self) {
        self.stats.failed_ioctls += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
    }

    /// Whether the engine has failed [`DmaConfig::degrade_after`]
    /// submissions in a row and callers should stop offloading to it.
    pub fn degraded(&self) -> bool {
        self.consecutive_failures >= self.config.degrade_after
    }

    /// Called by a degraded-path caller about to fall back: returns `true`
    /// once every [`DmaConfig::probe_after`] fallbacks, telling the caller
    /// to attempt a real submission instead (a success closes the
    /// breaker). Always `false` when probing is disabled (`probe_after ==
    /// 0`) or the engine is healthy.
    pub fn should_probe(&mut self) -> bool {
        if !self.degraded() || self.config.probe_after == 0 {
            return false;
        }
        self.fallbacks_since_probe += 1;
        if self.fallbacks_since_probe >= self.config.probe_after {
            self.fallbacks_since_probe = 0;
            true
        } else {
            false
        }
    }

    /// The instant every accepted descriptor has landed: no channel does
    /// work past this point. Recovery waits for it before recycling
    /// destination frames, so a late DMA write cannot corrupt a frame
    /// that was rolled back and reallocated.
    pub fn quiesce_at(&self) -> Ns {
        self.chan_free.iter().copied().max().unwrap_or(Ns::ZERO)
    }

    /// Aggregate copy bandwidth when using `n_channels` channels.
    pub fn bandwidth(&self, n_channels: usize) -> f64 {
        self.config.per_channel_bw * n_channels.min(self.chan_free.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn single_copy_timing() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let done = dma
            .submit(Ns::ZERO, &[6 * 1_000_000_000 / 1000], 1)
            .expect("submit");
        // 6 MB-ish at 6 GB/s = 1 ms, plus 2 us ioctl.
        let expect = Ns::millis(1) + Ns::micros(2);
        let diff = done.as_nanos().abs_diff(expect.as_nanos());
        assert!(diff < 1_000, "done {done} expect {expect}");
    }

    #[test]
    fn two_channels_halve_batch_time() {
        let mut one = DmaEngine::new(DmaConfig::ioat());
        let mut two = DmaEngine::new(DmaConfig::ioat());
        let batch = [2 * MB, 2 * MB, 2 * MB, 2 * MB];
        let t1 = one.submit(Ns::ZERO, &batch, 1).expect("submit");
        let t2 = two.submit(Ns::ZERO, &batch, 2).expect("submit");
        let r = t1.as_nanos() as f64 / t2.as_nanos() as f64;
        assert!((r - 2.0).abs() < 0.05, "speedup {r}");
    }

    #[test]
    fn backlog_carries_across_batches() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let t1 = dma.submit(Ns::ZERO, &[64 * MB], 1).expect("submit");
        let t2 = dma.submit(Ns::ZERO, &[64 * MB], 1).expect("submit");
        assert!(t2 > t1, "second batch must queue behind the first");
        assert!(t2.as_nanos() >= 2 * (t1.as_nanos() - 4_000));
    }

    #[test]
    fn stats_accumulate() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        dma.submit(Ns::ZERO, &[MB, MB], 2).expect("submit");
        dma.submit(Ns::ZERO, &[MB], 1).expect("submit");
        assert_eq!(dma.stats().copies, 3);
        assert_eq!(dma.stats().ioctls, 2);
        assert_eq!(dma.stats().bytes_copied, 3 * MB);
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let batch = vec![1u64; 33];
        assert_eq!(
            dma.submit(Ns::ZERO, &batch, 1),
            Err(DmaError::BatchTooLarge { got: 33, max: 32 })
        );
        assert_eq!(dma.stats().ioctls, 0, "rejected batch issues no ioctl");
    }

    #[test]
    fn bad_channel_counts_rejected() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        assert_eq!(
            dma.submit(Ns::ZERO, &[MB], 0),
            Err(DmaError::BadChannelCount { got: 0, have: 8 })
        );
        assert_eq!(
            dma.submit(Ns::ZERO, &[MB], 9),
            Err(DmaError::BadChannelCount { got: 9, have: 8 })
        );
    }

    #[test]
    fn engine_owns_channel_allocation() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let a = dma.alloc_channel().expect("channel");
        let b = dma.alloc_channel().expect("channel");
        assert_ne!(a, b);
        assert_eq!(dma.allocated_channels(), 2);
        dma.free_channel(a).expect("free");
        assert_eq!(dma.allocated_channels(), 1);
        // Lowest free channel is reused.
        assert_eq!(dma.alloc_channel(), Ok(a));
        // Double-free and out-of-range frees are rejected.
        dma.free_channel(b).expect("free");
        assert_eq!(dma.free_channel(b), Err(DmaError::BadChannel));
        assert_eq!(dma.free_channel(ChannelId(99)), Err(DmaError::BadChannel));
    }

    #[test]
    fn degrades_after_consecutive_failures_and_recovers() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        let after = dma.config().degrade_after;
        for _ in 0..after {
            assert!(!dma.degraded());
            dma.note_submit_failure();
        }
        assert!(dma.degraded());
        assert_eq!(dma.stats().failed_ioctls, after as u64);
        // One successful submission resets the breaker.
        dma.submit(Ns::ZERO, &[MB], 1).expect("submit");
        assert!(!dma.degraded());
    }

    #[test]
    fn try_new_rejects_oversized_channel_masks() {
        let mut cfg = DmaConfig::ioat();
        cfg.channels = 65;
        assert_eq!(
            DmaEngine::try_new(cfg).map(|_| ()),
            Err(DmaError::TooManyChannels { got: 65, max: 64 })
        );
    }

    #[test]
    fn quiesce_tracks_the_last_descriptor() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        assert_eq!(dma.quiesce_at(), Ns::ZERO, "idle engine is quiescent");
        let done = dma.submit(Ns::ZERO, &[64 * MB, MB], 2).expect("submit");
        assert_eq!(dma.quiesce_at(), done);
    }

    #[test]
    fn probe_reopens_the_breaker_on_success() {
        let mut cfg = DmaConfig::ioat();
        cfg.probe_after = 2;
        let mut dma = DmaEngine::new(cfg);
        assert!(!dma.should_probe(), "healthy engine never probes");
        for _ in 0..dma.config().degrade_after {
            dma.note_submit_failure();
        }
        assert!(dma.degraded());
        // Every second fallback becomes a probe.
        assert!(!dma.should_probe());
        assert!(dma.should_probe());
        assert!(!dma.should_probe());
        assert!(dma.should_probe());
        // The probe's successful submission closes the breaker.
        dma.submit(Ns::ZERO, &[MB], 1).expect("submit");
        assert!(!dma.degraded());
        assert!(!dma.should_probe(), "closed breaker stops probing");
    }

    #[test]
    fn probing_disabled_by_default() {
        let mut dma = DmaEngine::new(DmaConfig::ioat());
        for _ in 0..dma.config().degrade_after {
            dma.note_submit_failure();
        }
        assert!(dma.degraded());
        for _ in 0..100 {
            assert!(!dma.should_probe(), "probe_after = 0 never probes");
        }
    }

    #[test]
    fn bandwidth_scales_with_channels() {
        let dma = DmaEngine::new(DmaConfig::ioat());
        assert_eq!(dma.bandwidth(2), 12.0e9);
        assert_eq!(dma.bandwidth(100), 48.0e9, "clamped to available channels");
    }
}
