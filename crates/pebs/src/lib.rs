//! # hemem-pebs
//!
//! Model of processor event-based sampling as HeMem uses it (§3.1). Three
//! precise events are programmed:
//!
//! - `MEM_LOAD_RETIRED.LOCAL_PMM` — loads served from NVM,
//! - `MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM` — loads served from DRAM,
//! - `MEM_INST_RETIRED.ALL_STORES` — all stores,
//!
//! each with a sample period (one record per `period` events). When a
//! counter overflows the CPU appends a record carrying the instruction's
//! virtual data address to a pre-allocated buffer; records arriving at a
//! full buffer are lost. HeMem's PEBS thread drains the buffer at a
//! bounded rate — the fidelity/overhead trade-off Figure 10 sweeps.

#![warn(missing_docs)]

use std::collections::VecDeque;

use hemem_sim::{rate_budget, Ns};

/// Which programmed event produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SampleType {
    /// `MEM_LOAD_RETIRED.LOCAL_PMM` — load served from NVM.
    NvmLoad,
    /// `MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM` — load served from DRAM.
    DramLoad,
    /// `MEM_INST_RETIRED.ALL_STORES` — any store.
    Store,
}

impl SampleType {
    /// All sample types, indexable by [`SampleType::index`].
    pub const ALL: [SampleType; 3] = [SampleType::NvmLoad, SampleType::DramLoad, SampleType::Store];

    /// Dense index of this type.
    pub fn index(self) -> usize {
        match self {
            SampleType::NvmLoad => 0,
            SampleType::DramLoad => 1,
            SampleType::Store => 2,
        }
    }

    /// Whether this sample came from a store.
    pub fn is_store(self) -> bool {
        self == SampleType::Store
    }
}

/// One PEBS record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRecord {
    /// Virtual address targeted by the sampled instruction.
    pub vaddr: u64,
    /// Event that fired.
    pub kind: SampleType,
}

/// PEBS configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PebsConfig {
    /// Events per sample (the paper's default is ~5,000). With
    /// [`PebsConfig::adaptive`] this is only the *starting* period; the
    /// controller moves it between the configured bounds.
    pub sample_period: u64,
    /// Buffer capacity in records; overflow drops samples.
    pub buffer_capacity: usize,
    /// Records the PEBS thread can process per second of CPU time.
    pub drain_rate: f64,
    /// How often the PEBS thread wakes to read the buffer.
    pub drain_interval: Ns,
    /// Self-tuning sample period (off by default). When set, each drain
    /// pass runs a deterministic integer feedback loop over the window
    /// since the last decision: the period doubles while the windowed
    /// drop fraction or the buffer backlog exceeds its bound, and decays
    /// by a quarter when both are comfortably below, holding profiling
    /// loss inside the configured envelope at any access rate.
    #[serde(default)]
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for PebsConfig {
    fn default() -> Self {
        PebsConfig {
            sample_period: 5_000,
            buffer_capacity: 16_384,
            drain_rate: 0.5e6,
            drain_interval: Ns::millis(1),
            adaptive: None,
        }
    }
}

impl PebsConfig {
    /// The default configuration with the self-tuning controller armed.
    pub fn adaptive() -> PebsConfig {
        PebsConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..PebsConfig::default()
        }
    }
}

/// Bounds for the self-tuning sample period. All integer: the control
/// law must replay byte-identically from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveConfig {
    /// Lowest period the controller may choose (highest sampling rate).
    pub min_period: u64,
    /// Highest period the controller may choose.
    pub max_period: u64,
    /// Raise the period when the windowed drop fraction exceeds this
    /// bound (per-mille: 100 = 10%).
    pub target_drop_milli: u64,
    /// Lower the period when the windowed drop fraction is under this
    /// floor (per-mille) *and* the backlog is under half a drain budget.
    pub relax_drop_milli: u64,
    /// Minimum generated records in a window before a decision is made;
    /// starved windows carry over so idle phases do not thrash the
    /// period.
    pub min_window_samples: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_period: 500,
            max_period: 1_000_000,
            target_drop_milli: 100,
            relax_drop_milli: 20,
            min_window_samples: 64,
        }
    }
}

/// Typed rejection of an invalid [`PebsConfig`], following the
/// `DmaEngine::try_new` / `StateError` convention: callers that build
/// configurations from untrusted input get an error value, and
/// [`Pebs::new`] keeps the panicking convenience path for the shipped
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PebsConfigError {
    /// `sample_period` is zero: the counter would fire on every event.
    ZeroSamplePeriod,
    /// `buffer_capacity` is zero: no record could ever be delivered.
    ZeroBufferCapacity,
    /// The adaptive bounds are unusable (`min_period` zero or above
    /// `max_period`).
    AdaptiveBounds {
        /// Configured lower period bound.
        min: u64,
        /// Configured upper period bound.
        max: u64,
    },
}

impl std::fmt::Display for PebsConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PebsConfigError::ZeroSamplePeriod => write!(f, "sample period must be positive"),
            PebsConfigError::ZeroBufferCapacity => {
                write!(f, "buffer must hold at least one record")
            }
            PebsConfigError::AdaptiveBounds { min, max } => write!(
                f,
                "adaptive period bounds unusable: min {min} must be in 1..=max {max}"
            ),
        }
    }
}

impl std::error::Error for PebsConfigError {}

/// Cumulative sampling counters.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PebsStats {
    /// Records the hardware generated.
    pub generated: u64,
    /// Records lost to buffer overflow.
    pub dropped: u64,
    /// Records consumed by the PEBS thread.
    pub drained: u64,
}

impl PebsStats {
    /// Fraction of generated samples that were lost.
    pub fn drop_fraction(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.dropped as f64 / self.generated as f64
        }
    }
}

/// Counters for the self-tuning controller, kept apart from
/// [`PebsStats`] so the frozen stats layout (and every fingerprint
/// embedding it) is untouched when adaptation is off.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct AdaptStats {
    /// Windows evaluated by the controller.
    pub decisions: u64,
    /// Decisions that raised the period.
    pub raises: u64,
    /// Decisions that lowered the period.
    pub lowers: u64,
    /// Drop fraction (per-mille) of the last evaluated window.
    pub last_window_drop_milli: u64,
}

/// The PEBS unit: per-event residual counters plus the shared buffer.
#[derive(Debug, Clone)]
pub struct Pebs {
    config: PebsConfig,
    residual: [u64; 3],
    buffer: VecDeque<SampleRecord>,
    stats: PebsStats,
    /// Stats snapshot at the adaptive controller's last decision.
    window_base: PebsStats,
    adapt: AdaptStats,
}

impl Pebs {
    /// Creates an idle PEBS unit.
    ///
    /// # Panics
    ///
    /// Panics on a configuration [`Pebs::try_new`] rejects.
    pub fn new(config: PebsConfig) -> Pebs {
        Pebs::try_new(config).expect("valid PEBS configuration")
    }

    /// Fallible constructor: rejects configurations that could never
    /// deliver a sample (zero period or capacity) or whose adaptive
    /// bounds are inverted.
    pub fn try_new(config: PebsConfig) -> Result<Pebs, PebsConfigError> {
        if config.sample_period == 0 {
            return Err(PebsConfigError::ZeroSamplePeriod);
        }
        if config.buffer_capacity == 0 {
            return Err(PebsConfigError::ZeroBufferCapacity);
        }
        if let Some(a) = config.adaptive {
            if a.min_period == 0 || a.min_period > a.max_period {
                return Err(PebsConfigError::AdaptiveBounds {
                    min: a.min_period,
                    max: a.max_period,
                });
            }
        }
        Ok(Pebs {
            config,
            residual: [0; 3],
            buffer: VecDeque::new(),
            stats: PebsStats::default(),
            window_base: PebsStats::default(),
            adapt: AdaptStats::default(),
        })
    }

    /// Configuration in effect.
    pub fn config(&self) -> &PebsConfig {
        &self.config
    }

    /// The sample period currently programmed (moves under adaptation).
    pub fn sample_period(&self) -> u64 {
        self.config.sample_period
    }

    /// Whether the self-tuning controller is armed.
    pub fn is_adaptive(&self) -> bool {
        self.config.adaptive.is_some()
    }

    /// The self-tuning controller's counters.
    pub fn adapt_stats(&self) -> AdaptStats {
        self.adapt
    }

    /// One feedback step, run by the drain loop after each pass. Looks at
    /// the window of records generated since the last decision: if the
    /// windowed drop fraction exceeds `target_drop_milli` or the backlog
    /// left after draining exceeds one drain budget, the period doubles
    /// (clamped to `max_period`); if the drop fraction is under
    /// `relax_drop_milli` and the backlog under half a budget, the period
    /// decays to 3/4 (clamped to `min_period`). Pure integer arithmetic —
    /// replays are byte-identical. Returns the new period when it
    /// changed. No-op (and `None`) when adaptation is off or the window
    /// is still starved.
    pub fn adapt_after_drain(&mut self) -> Option<u64> {
        let a = self.config.adaptive?;
        let generated = self.stats.generated - self.window_base.generated;
        if generated < a.min_window_samples {
            return None;
        }
        let dropped = self.stats.dropped - self.window_base.dropped;
        let drop_milli = dropped * 1_000 / generated;
        self.window_base = self.stats;
        self.adapt.decisions += 1;
        self.adapt.last_window_drop_milli = drop_milli;
        let period = self.config.sample_period;
        let backlog = self.pending();
        let budget = self.drain_budget().max(1);
        let new = if drop_milli > a.target_drop_milli || backlog > budget {
            period.saturating_mul(2).min(a.max_period)
        } else if drop_milli < a.relax_drop_milli && backlog * 2 < budget {
            (period * 3 / 4).max(a.min_period)
        } else {
            period
        };
        if new == period {
            return None;
        }
        if new > period {
            self.adapt.raises += 1;
        } else {
            self.adapt.lowers += 1;
        }
        self.config.sample_period = new;
        Some(new)
    }

    /// Counters.
    pub fn stats(&self) -> &PebsStats {
        &self.stats
    }

    /// Records currently waiting in the buffer.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Advances the event counter for `kind` by `count` events and returns
    /// how many samples fire. Deterministic: residual events carry over, so
    /// exactly one sample fires per `sample_period` events of each type.
    pub fn events(&mut self, kind: SampleType, count: u64) -> u64 {
        let r = &mut self.residual[kind.index()];
        *r += count;
        let fired = *r / self.config.sample_period;
        *r %= self.config.sample_period;
        fired
    }

    /// Appends one record; returns `false` (and counts a drop) if the
    /// buffer is full.
    pub fn push(&mut self, rec: SampleRecord) -> bool {
        self.stats.generated += 1;
        if self.buffer.len() >= self.config.buffer_capacity {
            self.stats.dropped += 1;
            return false;
        }
        self.buffer.push_back(rec);
        true
    }

    /// Counts `n` records as generated-and-dropped without touching the
    /// buffer (burst overflow beyond what the PEBS thread can drain while
    /// the burst is produced).
    pub fn drop_n(&mut self, n: u64) {
        self.stats.generated += n;
        self.stats.dropped += n;
    }

    /// Counts `n` records as generated and immediately consumed (records
    /// produced during a long batch window that the PEBS thread drains
    /// concurrently, without ever accumulating in the buffer).
    pub fn record_direct(&mut self, n: u64) {
        self.stats.generated += n;
        self.stats.drained += n;
    }

    /// Discards everything waiting in the buffer, counting each record as
    /// dropped, and returns how many were lost. An overflow storm: the
    /// hardware wrapped the buffer before the PEBS thread got to it, so
    /// the whole backlog is gone. The tracker keeps classifying on
    /// whatever samples survive; only [`PebsStats::dropped`] records the
    /// loss. Used by fault injection.
    pub fn drop_pending(&mut self) -> u64 {
        let n = self.buffer.len() as u64;
        self.buffer.clear();
        self.stats.dropped += n;
        n
    }

    /// Free buffer slots right now.
    pub fn free_space(&self) -> u64 {
        self.config
            .buffer_capacity
            .saturating_sub(self.buffer.len()) as u64
    }

    /// How many records a burst produced over `duration` can deliver
    /// without loss: free buffer space plus what the PEBS thread drains
    /// concurrently ([`hemem_sim::rate_budget`] rounding).
    pub fn burst_room(&self, duration: Ns) -> u64 {
        self.free_space() + rate_budget(self.config.drain_rate, duration)
    }

    /// Removes up to `max` records in arrival order (the PEBS thread's
    /// read).
    pub fn drain(&mut self, max: usize) -> Vec<SampleRecord> {
        let n = max.min(self.buffer.len());
        let out: Vec<SampleRecord> = self.buffer.drain(..n).collect();
        self.stats.drained += out.len() as u64;
        out
    }

    /// How many records one drain pass may consume, given the PEBS
    /// thread's processing rate and wake interval. Shares
    /// [`hemem_sim::rate_budget`]'s truncating rounding with every other
    /// rate-derived budget (this used to `ceil()`; the values are
    /// identical for all shipped configurations, whose rate × interval
    /// products are exact integers).
    pub fn drain_budget(&self) -> usize {
        rate_budget(self.config.drain_rate, self.config.drain_interval) as usize
    }

    /// CPU time the PEBS thread spends consuming `n` records.
    pub fn drain_cpu_time(&self, n: usize) -> Ns {
        Ns::from_secs_f64(n as f64 / self.config.drain_rate)
    }
}

/// Cumulative counters for one tenant's sample stream.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct TenantStreamStats {
    /// Records delivered to the tenant's tracker.
    pub delivered: u64,
    /// Records discarded because the tenant exhausted its per-pass
    /// budget.
    pub throttled: u64,
}

/// Per-tenant drain-budget demultiplexer.
///
/// On a multi-tenant machine the PEBS buffer is shared hardware: one
/// tenant hammering memory can fill every drain pass with its own
/// records and starve the other tenants' classifiers. The demux splits
/// each drained batch into per-tenant streams and caps how many records
/// any one tenant may consume per pass, so classification bandwidth is
/// divided like every other arbitrated resource. The single-tenant path
/// bypasses the demux entirely, which keeps solo runs byte-identical to
/// an unmultiplexed machine.
#[derive(Debug, Clone)]
pub struct TenantDemux {
    per_pass_budget: u64,
    pass_counts: Vec<u64>,
    stats: Vec<TenantStreamStats>,
}

impl TenantDemux {
    /// Creates a demux for `tenants` streams, each allowed
    /// `per_pass_budget` records per drain pass.
    pub fn new(tenants: usize, per_pass_budget: u64) -> TenantDemux {
        assert!(tenants > 0, "demux needs at least one stream");
        TenantDemux {
            per_pass_budget: per_pass_budget.max(1),
            pass_counts: vec![0; tenants],
            stats: vec![TenantStreamStats::default(); tenants],
        }
    }

    /// Number of streams.
    pub fn tenants(&self) -> usize {
        self.stats.len()
    }

    /// Records each tenant may consume per drain pass.
    pub fn per_pass_budget(&self) -> u64 {
        self.per_pass_budget
    }

    /// Adjusts the per-pass budget (e.g. when the drain rate changes).
    pub fn set_per_pass_budget(&mut self, budget: u64) {
        self.per_pass_budget = budget.max(1);
    }

    /// Starts a new drain pass: every tenant's budget is refilled.
    pub fn begin_pass(&mut self) {
        self.pass_counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Accounts one record against `tenant`'s budget for this pass.
    /// Returns `true` if the record is admitted (deliver it) and `false`
    /// if the tenant is throttled for the rest of the pass.
    pub fn admit(&mut self, tenant: usize) -> bool {
        if self.pass_counts[tenant] < self.per_pass_budget {
            self.pass_counts[tenant] += 1;
            self.stats[tenant].delivered += 1;
            true
        } else {
            self.stats[tenant].throttled += 1;
            false
        }
    }

    /// Cumulative counters for `tenant`'s stream.
    pub fn stream_stats(&self, tenant: usize) -> TenantStreamStats {
        self.stats[tenant]
    }

    /// Scrubs one tenant's demux lane back to a fresh stream: cumulative
    /// counters and the in-pass budget both return to zero. Part of the
    /// slot-pool teardown, so a recycled slot's next occupant starts
    /// with a clean PEBS stream instead of inheriting its predecessor's
    /// delivered/throttled history.
    pub fn reset_lane(&mut self, tenant: usize) {
        self.pass_counts[tenant] = 0;
        self.stats[tenant] = TenantStreamStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64) -> SampleRecord {
        SampleRecord {
            vaddr: addr,
            kind: SampleType::Store,
        }
    }

    #[test]
    fn sampling_rate_is_exact_with_residual() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 5_000,
            ..PebsConfig::default()
        });
        let mut fired = 0;
        for _ in 0..100 {
            fired += p.events(SampleType::NvmLoad, 1_234);
        }
        assert_eq!(fired, 100 * 1_234 / 5_000);
    }

    #[test]
    fn per_type_counters_independent() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 10,
            ..PebsConfig::default()
        });
        assert_eq!(p.events(SampleType::NvmLoad, 9), 0);
        assert_eq!(p.events(SampleType::Store, 9), 0);
        assert_eq!(p.events(SampleType::NvmLoad, 1), 1);
        assert_eq!(p.events(SampleType::Store, 11), 2);
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut p = Pebs::new(PebsConfig {
            buffer_capacity: 2,
            ..PebsConfig::default()
        });
        assert!(p.push(rec(1)));
        assert!(p.push(rec(2)));
        assert!(!p.push(rec(3)));
        assert_eq!(p.stats().generated, 3);
        assert_eq!(p.stats().dropped, 1);
        assert!((p.stats().drop_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn drain_is_fifo_and_bounded() {
        let mut p = Pebs::new(PebsConfig::default());
        for i in 0..10 {
            p.push(rec(i));
        }
        let got = p.drain(4);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].vaddr, 0);
        assert_eq!(got[3].vaddr, 3);
        assert_eq!(p.pending(), 6);
        assert_eq!(p.stats().drained, 4);
        let rest = p.drain(100);
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn overflow_storm_loses_backlog_but_not_the_unit() {
        let mut p = Pebs::new(PebsConfig::default());
        for i in 0..10 {
            p.push(rec(i));
        }
        assert_eq!(p.drop_pending(), 10);
        assert_eq!(p.pending(), 0);
        assert_eq!(p.stats().dropped, 10);
        assert_eq!(p.stats().generated, 10, "drops are not new generation");
        // The unit keeps sampling after the storm.
        assert!(p.push(rec(99)));
        assert_eq!(p.drain(10).len(), 1);
    }

    #[test]
    fn drain_budget_matches_rate() {
        let p = Pebs::new(PebsConfig {
            drain_rate: 1.0e6,
            drain_interval: Ns::millis(2),
            ..PebsConfig::default()
        });
        assert_eq!(p.drain_budget(), 2_000);
        assert_eq!(p.drain_cpu_time(1_000), Ns::millis(1));
    }

    #[test]
    fn low_period_overflows_high_period_does_not() {
        // Figure 10's mechanism: at small sample periods the hardware
        // outpaces the drain budget and samples drop.
        let mk = |period| {
            Pebs::new(PebsConfig {
                sample_period: period,
                buffer_capacity: 1_000,
                ..PebsConfig::default()
            })
        };
        let mut fast = mk(10);
        let mut slow = mk(10_000);
        // 100k accesses between drains.
        for p in [&mut fast, &mut slow] {
            let fired = p.events(SampleType::Store, 100_000);
            for i in 0..fired {
                p.push(rec(i));
            }
            p.drain(p.drain_budget());
        }
        assert!(fast.stats().dropped > 0, "period 10 must overflow");
        assert_eq!(slow.stats().dropped, 0, "period 10k must not overflow");
    }

    #[test]
    fn demux_caps_each_stream_per_pass() {
        let mut d = TenantDemux::new(2, 3);
        d.begin_pass();
        for _ in 0..5 {
            d.admit(0);
        }
        assert!(d.admit(1), "tenant 1 unaffected by tenant 0's flood");
        assert_eq!(d.stream_stats(0).delivered, 3);
        assert_eq!(d.stream_stats(0).throttled, 2);
        assert_eq!(d.stream_stats(1).delivered, 1);
        // A new pass refills every budget.
        d.begin_pass();
        assert!(d.admit(0));
        assert_eq!(d.stream_stats(0).delivered, 4);
    }

    #[test]
    fn try_new_rejects_degenerate_configs() {
        assert_eq!(
            Pebs::try_new(PebsConfig {
                sample_period: 0,
                ..PebsConfig::default()
            })
            .map(|_| ()),
            Err(PebsConfigError::ZeroSamplePeriod)
        );
        assert_eq!(
            Pebs::try_new(PebsConfig {
                buffer_capacity: 0,
                ..PebsConfig::default()
            })
            .map(|_| ()),
            Err(PebsConfigError::ZeroBufferCapacity)
        );
        let mut cfg = PebsConfig::adaptive();
        cfg.adaptive.as_mut().unwrap().min_period = 0;
        assert_eq!(
            Pebs::try_new(cfg).map(|_| ()),
            Err(PebsConfigError::AdaptiveBounds {
                min: 0,
                max: 1_000_000
            })
        );
        assert!(Pebs::try_new(PebsConfig::default()).is_ok());
    }

    #[test]
    fn adaptive_raises_period_under_drop_pressure() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 10,
            buffer_capacity: 100,
            adaptive: Some(AdaptiveConfig {
                min_period: 10,
                max_period: 10_000,
                ..AdaptiveConfig::default()
            }),
            ..PebsConfig::default()
        });
        // Flood: 10k events -> 1k records into a 100-slot buffer.
        let fired = p.events(SampleType::Store, 10_000);
        for i in 0..fired {
            p.push(rec(i));
        }
        p.drain(p.drain_budget());
        assert!(p.stats().drop_fraction() > 0.5);
        assert_eq!(p.adapt_after_drain(), Some(20), "period doubles");
        assert_eq!(p.adapt_stats().raises, 1);
        assert!(p.adapt_stats().last_window_drop_milli > 500);
    }

    #[test]
    fn adaptive_relaxes_period_when_quiet() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 1_000,
            adaptive: Some(AdaptiveConfig {
                min_period: 100,
                max_period: 10_000,
                ..AdaptiveConfig::default()
            }),
            ..PebsConfig::default()
        });
        // 64 records, none dropped, all drained: well under every bound.
        let fired = p.events(SampleType::Store, 64_000);
        for i in 0..fired {
            p.push(rec(i));
        }
        p.drain(p.drain_budget());
        assert_eq!(p.adapt_after_drain(), Some(750), "period decays by 1/4");
        assert_eq!(p.adapt_stats().lowers, 1);
        // A starved window makes no decision.
        assert_eq!(p.adapt_after_drain(), None);
        assert_eq!(p.adapt_stats().decisions, 1);
    }

    #[test]
    fn adaptive_respects_bounds() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 6_000,
            adaptive: Some(AdaptiveConfig {
                min_period: 6_000,
                max_period: 6_000,
                ..AdaptiveConfig::default()
            }),
            ..PebsConfig::default()
        });
        let fired = p.events(SampleType::Store, 6_000 * 100);
        for i in 0..fired {
            p.push(rec(i));
        }
        assert_eq!(p.adapt_after_drain(), None, "pinned bounds never move");
        assert_eq!(p.sample_period(), 6_000);
    }

    #[test]
    fn non_adaptive_unit_never_adapts() {
        let mut p = Pebs::new(PebsConfig::default());
        let fired = p.events(SampleType::Store, 5_000 * 1_000);
        for i in 0..fired {
            p.push(rec(i));
        }
        assert!(!p.is_adaptive());
        assert_eq!(p.adapt_after_drain(), None);
        assert_eq!(p.adapt_stats().decisions, 0);
    }

    #[test]
    fn sample_type_helpers() {
        assert!(SampleType::Store.is_store());
        assert!(!SampleType::NvmLoad.is_store());
        for (i, t) in SampleType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }
}
