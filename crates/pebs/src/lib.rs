//! # hemem-pebs
//!
//! Model of processor event-based sampling as HeMem uses it (§3.1). Three
//! precise events are programmed:
//!
//! - `MEM_LOAD_RETIRED.LOCAL_PMM` — loads served from NVM,
//! - `MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM` — loads served from DRAM,
//! - `MEM_INST_RETIRED.ALL_STORES` — all stores,
//!
//! each with a sample period (one record per `period` events). When a
//! counter overflows the CPU appends a record carrying the instruction's
//! virtual data address to a pre-allocated buffer; records arriving at a
//! full buffer are lost. HeMem's PEBS thread drains the buffer at a
//! bounded rate — the fidelity/overhead trade-off Figure 10 sweeps.

#![warn(missing_docs)]

use std::collections::VecDeque;

use hemem_sim::{rate_budget, Ns};

/// Which programmed event produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SampleType {
    /// `MEM_LOAD_RETIRED.LOCAL_PMM` — load served from NVM.
    NvmLoad,
    /// `MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM` — load served from DRAM.
    DramLoad,
    /// `MEM_INST_RETIRED.ALL_STORES` — any store.
    Store,
}

impl SampleType {
    /// All sample types, indexable by [`SampleType::index`].
    pub const ALL: [SampleType; 3] = [SampleType::NvmLoad, SampleType::DramLoad, SampleType::Store];

    /// Dense index of this type.
    pub fn index(self) -> usize {
        match self {
            SampleType::NvmLoad => 0,
            SampleType::DramLoad => 1,
            SampleType::Store => 2,
        }
    }

    /// Whether this sample came from a store.
    pub fn is_store(self) -> bool {
        self == SampleType::Store
    }
}

/// One PEBS record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRecord {
    /// Virtual address targeted by the sampled instruction.
    pub vaddr: u64,
    /// Event that fired.
    pub kind: SampleType,
}

/// PEBS configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PebsConfig {
    /// Events per sample (the paper's default is ~5,000).
    pub sample_period: u64,
    /// Buffer capacity in records; overflow drops samples.
    pub buffer_capacity: usize,
    /// Records the PEBS thread can process per second of CPU time.
    pub drain_rate: f64,
    /// How often the PEBS thread wakes to read the buffer.
    pub drain_interval: Ns,
}

impl Default for PebsConfig {
    fn default() -> Self {
        PebsConfig {
            sample_period: 5_000,
            buffer_capacity: 16_384,
            drain_rate: 0.5e6,
            drain_interval: Ns::millis(1),
        }
    }
}

/// Cumulative sampling counters.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PebsStats {
    /// Records the hardware generated.
    pub generated: u64,
    /// Records lost to buffer overflow.
    pub dropped: u64,
    /// Records consumed by the PEBS thread.
    pub drained: u64,
}

impl PebsStats {
    /// Fraction of generated samples that were lost.
    pub fn drop_fraction(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.dropped as f64 / self.generated as f64
        }
    }
}

/// The PEBS unit: per-event residual counters plus the shared buffer.
#[derive(Debug, Clone)]
pub struct Pebs {
    config: PebsConfig,
    residual: [u64; 3],
    buffer: VecDeque<SampleRecord>,
    stats: PebsStats,
}

impl Pebs {
    /// Creates an idle PEBS unit.
    pub fn new(config: PebsConfig) -> Pebs {
        assert!(config.sample_period > 0, "sample period must be positive");
        assert!(
            config.buffer_capacity > 0,
            "buffer must hold at least one record"
        );
        Pebs {
            config,
            residual: [0; 3],
            buffer: VecDeque::new(),
            stats: PebsStats::default(),
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &PebsConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> &PebsStats {
        &self.stats
    }

    /// Records currently waiting in the buffer.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Advances the event counter for `kind` by `count` events and returns
    /// how many samples fire. Deterministic: residual events carry over, so
    /// exactly one sample fires per `sample_period` events of each type.
    pub fn events(&mut self, kind: SampleType, count: u64) -> u64 {
        let r = &mut self.residual[kind.index()];
        *r += count;
        let fired = *r / self.config.sample_period;
        *r %= self.config.sample_period;
        fired
    }

    /// Appends one record; returns `false` (and counts a drop) if the
    /// buffer is full.
    pub fn push(&mut self, rec: SampleRecord) -> bool {
        self.stats.generated += 1;
        if self.buffer.len() >= self.config.buffer_capacity {
            self.stats.dropped += 1;
            return false;
        }
        self.buffer.push_back(rec);
        true
    }

    /// Counts `n` records as generated-and-dropped without touching the
    /// buffer (burst overflow beyond what the PEBS thread can drain while
    /// the burst is produced).
    pub fn drop_n(&mut self, n: u64) {
        self.stats.generated += n;
        self.stats.dropped += n;
    }

    /// Counts `n` records as generated and immediately consumed (records
    /// produced during a long batch window that the PEBS thread drains
    /// concurrently, without ever accumulating in the buffer).
    pub fn record_direct(&mut self, n: u64) {
        self.stats.generated += n;
        self.stats.drained += n;
    }

    /// Discards everything waiting in the buffer, counting each record as
    /// dropped, and returns how many were lost. An overflow storm: the
    /// hardware wrapped the buffer before the PEBS thread got to it, so
    /// the whole backlog is gone. The tracker keeps classifying on
    /// whatever samples survive; only [`PebsStats::dropped`] records the
    /// loss. Used by fault injection.
    pub fn drop_pending(&mut self) -> u64 {
        let n = self.buffer.len() as u64;
        self.buffer.clear();
        self.stats.dropped += n;
        n
    }

    /// Free buffer slots right now.
    pub fn free_space(&self) -> u64 {
        self.config
            .buffer_capacity
            .saturating_sub(self.buffer.len()) as u64
    }

    /// How many records a burst produced over `duration` can deliver
    /// without loss: free buffer space plus what the PEBS thread drains
    /// concurrently ([`hemem_sim::rate_budget`] rounding).
    pub fn burst_room(&self, duration: Ns) -> u64 {
        self.free_space() + rate_budget(self.config.drain_rate, duration)
    }

    /// Removes up to `max` records in arrival order (the PEBS thread's
    /// read).
    pub fn drain(&mut self, max: usize) -> Vec<SampleRecord> {
        let n = max.min(self.buffer.len());
        let out: Vec<SampleRecord> = self.buffer.drain(..n).collect();
        self.stats.drained += out.len() as u64;
        out
    }

    /// How many records one drain pass may consume, given the PEBS
    /// thread's processing rate and wake interval. Shares
    /// [`hemem_sim::rate_budget`]'s truncating rounding with every other
    /// rate-derived budget (this used to `ceil()`; the values are
    /// identical for all shipped configurations, whose rate × interval
    /// products are exact integers).
    pub fn drain_budget(&self) -> usize {
        rate_budget(self.config.drain_rate, self.config.drain_interval) as usize
    }

    /// CPU time the PEBS thread spends consuming `n` records.
    pub fn drain_cpu_time(&self, n: usize) -> Ns {
        Ns::from_secs_f64(n as f64 / self.config.drain_rate)
    }
}

/// Cumulative counters for one tenant's sample stream.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct TenantStreamStats {
    /// Records delivered to the tenant's tracker.
    pub delivered: u64,
    /// Records discarded because the tenant exhausted its per-pass
    /// budget.
    pub throttled: u64,
}

/// Per-tenant drain-budget demultiplexer.
///
/// On a multi-tenant machine the PEBS buffer is shared hardware: one
/// tenant hammering memory can fill every drain pass with its own
/// records and starve the other tenants' classifiers. The demux splits
/// each drained batch into per-tenant streams and caps how many records
/// any one tenant may consume per pass, so classification bandwidth is
/// divided like every other arbitrated resource. The single-tenant path
/// bypasses the demux entirely, which keeps solo runs byte-identical to
/// an unmultiplexed machine.
#[derive(Debug, Clone)]
pub struct TenantDemux {
    per_pass_budget: u64,
    pass_counts: Vec<u64>,
    stats: Vec<TenantStreamStats>,
}

impl TenantDemux {
    /// Creates a demux for `tenants` streams, each allowed
    /// `per_pass_budget` records per drain pass.
    pub fn new(tenants: usize, per_pass_budget: u64) -> TenantDemux {
        assert!(tenants > 0, "demux needs at least one stream");
        TenantDemux {
            per_pass_budget: per_pass_budget.max(1),
            pass_counts: vec![0; tenants],
            stats: vec![TenantStreamStats::default(); tenants],
        }
    }

    /// Number of streams.
    pub fn tenants(&self) -> usize {
        self.stats.len()
    }

    /// Records each tenant may consume per drain pass.
    pub fn per_pass_budget(&self) -> u64 {
        self.per_pass_budget
    }

    /// Adjusts the per-pass budget (e.g. when the drain rate changes).
    pub fn set_per_pass_budget(&mut self, budget: u64) {
        self.per_pass_budget = budget.max(1);
    }

    /// Starts a new drain pass: every tenant's budget is refilled.
    pub fn begin_pass(&mut self) {
        self.pass_counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Accounts one record against `tenant`'s budget for this pass.
    /// Returns `true` if the record is admitted (deliver it) and `false`
    /// if the tenant is throttled for the rest of the pass.
    pub fn admit(&mut self, tenant: usize) -> bool {
        if self.pass_counts[tenant] < self.per_pass_budget {
            self.pass_counts[tenant] += 1;
            self.stats[tenant].delivered += 1;
            true
        } else {
            self.stats[tenant].throttled += 1;
            false
        }
    }

    /// Cumulative counters for `tenant`'s stream.
    pub fn stream_stats(&self, tenant: usize) -> TenantStreamStats {
        self.stats[tenant]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64) -> SampleRecord {
        SampleRecord {
            vaddr: addr,
            kind: SampleType::Store,
        }
    }

    #[test]
    fn sampling_rate_is_exact_with_residual() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 5_000,
            ..PebsConfig::default()
        });
        let mut fired = 0;
        for _ in 0..100 {
            fired += p.events(SampleType::NvmLoad, 1_234);
        }
        assert_eq!(fired, 100 * 1_234 / 5_000);
    }

    #[test]
    fn per_type_counters_independent() {
        let mut p = Pebs::new(PebsConfig {
            sample_period: 10,
            ..PebsConfig::default()
        });
        assert_eq!(p.events(SampleType::NvmLoad, 9), 0);
        assert_eq!(p.events(SampleType::Store, 9), 0);
        assert_eq!(p.events(SampleType::NvmLoad, 1), 1);
        assert_eq!(p.events(SampleType::Store, 11), 2);
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut p = Pebs::new(PebsConfig {
            buffer_capacity: 2,
            ..PebsConfig::default()
        });
        assert!(p.push(rec(1)));
        assert!(p.push(rec(2)));
        assert!(!p.push(rec(3)));
        assert_eq!(p.stats().generated, 3);
        assert_eq!(p.stats().dropped, 1);
        assert!((p.stats().drop_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn drain_is_fifo_and_bounded() {
        let mut p = Pebs::new(PebsConfig::default());
        for i in 0..10 {
            p.push(rec(i));
        }
        let got = p.drain(4);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].vaddr, 0);
        assert_eq!(got[3].vaddr, 3);
        assert_eq!(p.pending(), 6);
        assert_eq!(p.stats().drained, 4);
        let rest = p.drain(100);
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn overflow_storm_loses_backlog_but_not_the_unit() {
        let mut p = Pebs::new(PebsConfig::default());
        for i in 0..10 {
            p.push(rec(i));
        }
        assert_eq!(p.drop_pending(), 10);
        assert_eq!(p.pending(), 0);
        assert_eq!(p.stats().dropped, 10);
        assert_eq!(p.stats().generated, 10, "drops are not new generation");
        // The unit keeps sampling after the storm.
        assert!(p.push(rec(99)));
        assert_eq!(p.drain(10).len(), 1);
    }

    #[test]
    fn drain_budget_matches_rate() {
        let p = Pebs::new(PebsConfig {
            drain_rate: 1.0e6,
            drain_interval: Ns::millis(2),
            ..PebsConfig::default()
        });
        assert_eq!(p.drain_budget(), 2_000);
        assert_eq!(p.drain_cpu_time(1_000), Ns::millis(1));
    }

    #[test]
    fn low_period_overflows_high_period_does_not() {
        // Figure 10's mechanism: at small sample periods the hardware
        // outpaces the drain budget and samples drop.
        let mk = |period| {
            Pebs::new(PebsConfig {
                sample_period: period,
                buffer_capacity: 1_000,
                ..PebsConfig::default()
            })
        };
        let mut fast = mk(10);
        let mut slow = mk(10_000);
        // 100k accesses between drains.
        for p in [&mut fast, &mut slow] {
            let fired = p.events(SampleType::Store, 100_000);
            for i in 0..fired {
                p.push(rec(i));
            }
            p.drain(p.drain_budget());
        }
        assert!(fast.stats().dropped > 0, "period 10 must overflow");
        assert_eq!(slow.stats().dropped, 0, "period 10k must not overflow");
    }

    #[test]
    fn demux_caps_each_stream_per_pass() {
        let mut d = TenantDemux::new(2, 3);
        d.begin_pass();
        for _ in 0..5 {
            d.admit(0);
        }
        assert!(d.admit(1), "tenant 1 unaffected by tenant 0's flood");
        assert_eq!(d.stream_stats(0).delivered, 3);
        assert_eq!(d.stream_stats(0).throttled, 2);
        assert_eq!(d.stream_stats(1).delivered, 1);
        // A new pass refills every budget.
        d.begin_pass();
        assert!(d.admit(0));
        assert_eq!(d.stream_stats(0).delivered, 4);
    }

    #[test]
    fn sample_type_helpers() {
        assert!(SampleType::Store.is_store());
        assert!(!SampleType::NvmLoad.is_store());
        for (i, t) in SampleType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }
}
