//! Page-table scan-and-classify pass shared by the scanning baselines
//! (Nimble and the HeMem-PT variants).
//!
//! The scanner walks every leaf entry of the managed regions, reads the
//! accessed/dirty bits (sampled lazily from each region's
//! [`hemem_vmm::AccessLedger`]), classifies pages hot or cold in the
//! shared [`PageTracker`], clears the bits, and issues the TLB shootdown
//! the clearing requires. Scan *time* is charged at base-page granularity
//! (the kernel walks PTEs), while classification happens at the tracking
//! granularity (huge pages) — this is the §2.3 cost the paper measures in
//! Figure 3.

use std::collections::HashMap;

use hemem_core::hemem::PageTracker;
use hemem_core::machine::MachineCore;
use hemem_memdev::MemOp;
use hemem_sim::Ns;
use hemem_vmm::{touched_probability, PageId, PageSize, RegionId, RegionKind};

/// Per-page accessed-bit streaks across scans (Linux-style second-chance:
/// a page joins the active set only after being referenced in `needed`
/// consecutive scans).
pub type ScanStreaks = HashMap<PageId, u8>;

/// Result of one full scan pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOutcome {
    /// Huge pages classified.
    pub pages_scanned: u64,
    /// Pages marked hot (accessed bit set).
    pub marked_hot: u64,
    /// Pages marked cold.
    pub marked_cold: u64,
    /// Wall-clock cost of the scan (entry walks + shootdown).
    pub scan_time: Ns,
}

/// Scans all managed regions, classifying pages into `tracker`.
///
/// `dirty_priority`: whether dirty bits mark pages write-heavy (HeMem-PT
/// uses them; Nimble's NUMA balancing is blind to write skew — Table 2).
pub fn scan_and_classify(
    m: &mut MachineCore,
    tracker: &mut PageTracker,
    now: Ns,
    dirty_priority: bool,
) -> ScanOutcome {
    scan_and_classify_with(m, tracker, now, dirty_priority, None, 1)
}

/// Like [`scan_and_classify`], with a referenced-streak requirement: a
/// page is marked hot only after its accessed bit was set in `needed`
/// consecutive scans (state kept in `streaks`). `needed = 1` marks on the
/// first set bit (the HeMem-PT variants); Linux NUMA balancing uses 2.
pub fn scan_and_classify_with(
    m: &mut MachineCore,
    tracker: &mut PageTracker,
    now: Ns,
    dirty_priority: bool,
    mut streaks: Option<&mut ScanStreaks>,
    needed: u8,
) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let ids: Vec<RegionId> = m
        .space
        .regions()
        .filter(|r| r.kind() == RegionKind::ManagedHeap && tracker.tracks(r.id()))
        .map(|r| r.id())
        .collect();
    let mut total_bytes = 0u64;
    for id in ids {
        let region = m.space.region(id);
        let pages = region.page_count();
        let page_bytes = region.page_size().bytes();
        total_bytes += pages * page_bytes;
        // The simulator deposits a batch's access evidence at submission,
        // so a scan may land between deposits and see nothing at all for a
        // region that is actually mid-batch. No evidence is not evidence
        // of idleness: skip classification (and leave streaks intact)
        // until the next deposit arrives. Scan *cost* is still charged.
        if region.ledger.is_empty() {
            continue;
        }
        let segments = region.ledger.segments();
        out.pages_scanned += pages;
        // Pages outside any recorded segment were untouched: cold.
        let classify = |m: &mut MachineCore,
                        tracker: &mut PageTracker,
                        streaks: &mut Option<&mut ScanStreaks>,
                        lo: u64,
                        hi: u64,
                        r_per_page: f64,
                        w_per_page: f64,
                        out: &mut ScanOutcome| {
            for p in lo..hi {
                let page = PageId {
                    region: id,
                    index: p,
                };
                let accessed = m
                    .rng
                    .bernoulli(touched_probability(r_per_page + w_per_page));
                let qualifies = if accessed {
                    match streaks.as_deref_mut() {
                        Some(map) => {
                            let e = map.entry(page).or_insert(0);
                            *e = e.saturating_add(1);
                            *e >= needed
                        }
                        None => true,
                    }
                } else {
                    if let Some(map) = streaks.as_deref_mut() {
                        map.remove(&page);
                    }
                    false
                };
                if qualifies {
                    let dirty = m.rng.bernoulli(touched_probability(w_per_page));
                    tracker.mark_hot(page, dirty_priority && dirty);
                    out.marked_hot += 1;
                } else {
                    tracker.mark_cold(page);
                    out.marked_cold += 1;
                }
            }
        };
        let mut cursor = 0u64;
        for (lo, hi, r, w) in segments {
            let lo = lo.min(pages);
            let hi = hi.min(pages);
            if cursor < lo {
                classify(m, tracker, &mut streaks, cursor, lo, 0.0, 0.0, &mut out);
            }
            classify(m, tracker, &mut streaks, lo, hi, r, w, &mut out);
            cursor = hi.max(cursor);
        }
        if cursor < pages {
            classify(m, tracker, &mut streaks, cursor, pages, 0.0, 0.0, &mut out);
        }
        m.space.region_mut(id).ledger.clear();
    }
    // Cost: walk every base-page PTE of the scanned span, stream the page
    // tables through DRAM, then shoot down the TLB for the bit clears.
    let scan = m.cfg.scan.scan_time(total_bytes, PageSize::Base4K);
    let pte_bytes = PageSize::Base4K.pages_for(total_bytes) * 8;
    m.dram.reserve_bulk(now, MemOp::Read, pte_bytes, None);
    let cores = m.cores.cores();
    let shootdown = m.tlb.shootdown(cores);
    out.scan_time = scan + shootdown;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::hemem::TrackerConfig;
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;
    use hemem_vmm::Tier;

    fn setup(pages: u64) -> (MachineCore, PageTracker, RegionId) {
        let mut m = MachineCore::new(MachineConfig::small(4, 16));
        let ps = m.cfg.managed_page;
        let id = m
            .space
            .mmap(pages * ps.bytes(), ps, RegionKind::ManagedHeap);
        let mut t = PageTracker::new(TrackerConfig::default());
        t.add_region(id, pages);
        for i in 0..pages {
            let phys = m.pool_mut(Tier::Nvm).alloc().expect("space");
            m.space.region_mut(id).map_page(i, Tier::Nvm, phys);
            t.placed(
                PageId {
                    region: id,
                    index: i,
                },
                Tier::Nvm,
            );
        }
        (m, t, id)
    }

    #[test]
    fn hot_segment_marked_hot_cold_rest_cold() {
        let (mut m, mut t, id) = setup(100);
        // Heavy traffic on pages 10..20, nothing elsewhere.
        m.space.region_mut(id).ledger.add(10, 20, 1000.0, 0.0);
        let out = scan_and_classify(&mut m, &mut t, Ns::ZERO, true);
        assert_eq!(out.pages_scanned, 100);
        assert_eq!(out.marked_hot, 10, "lambda=100 per page: all touched");
        assert_eq!(out.marked_cold, 90);
        assert_eq!(t.queue_len(hemem_core::hemem::Queue::NvmHot), 10);
    }

    #[test]
    fn scan_clears_ledger() {
        let (mut m, mut t, id) = setup(10);
        m.space.region_mut(id).ledger.add(0, 10, 100.0, 0.0);
        scan_and_classify(&mut m, &mut t, Ns::ZERO, false);
        assert!(m.space.region(id).ledger.is_empty());
    }

    #[test]
    fn low_rate_interval_marks_probabilistically() {
        let (mut m, mut t, id) = setup(1000);
        // lambda = 0.5 per page: ~39% touched.
        m.space.region_mut(id).ledger.add(0, 1000, 500.0, 0.0);
        let out = scan_and_classify(&mut m, &mut t, Ns::ZERO, false);
        let frac = out.marked_hot as f64 / 1000.0;
        assert!((frac - 0.39).abs() < 0.07, "touched fraction {frac}");
    }

    #[test]
    fn longer_interval_overestimates_hot_set() {
        // The §2.3 pathology end to end: same per-second rate, 10x the
        // interval, far more of memory looks hot.
        let (mut m1, mut t1, id1) = setup(1000);
        m1.space.region_mut(id1).ledger.add(0, 1000, 500.0, 0.0);
        let short = scan_and_classify(&mut m1, &mut t1, Ns::ZERO, false);
        let (mut m2, mut t2, id2) = setup(1000);
        m2.space.region_mut(id2).ledger.add(0, 1000, 5000.0, 0.0);
        let long = scan_and_classify(&mut m2, &mut t2, Ns::ZERO, false);
        assert!(
            long.marked_hot > 2 * short.marked_hot,
            "short {} vs long {}",
            short.marked_hot,
            long.marked_hot
        );
    }

    #[test]
    fn dirty_bits_drive_write_priority_only_when_enabled() {
        let (mut m, mut t, id) = setup(10);
        m.space.region_mut(id).ledger.add(0, 10, 0.0, 1000.0);
        scan_and_classify(&mut m, &mut t, Ns::ZERO, true);
        assert!(t.is_write_heavy(PageId {
            region: id,
            index: 3
        }));
        let (mut m2, mut t2, id2) = setup(10);
        m2.space.region_mut(id2).ledger.add(0, 10, 0.0, 1000.0);
        scan_and_classify(&mut m2, &mut t2, Ns::ZERO, false);
        assert!(!t2.is_write_heavy(PageId {
            region: id2,
            index: 3
        }));
    }

    #[test]
    fn scan_time_scales_with_span_and_includes_shootdown() {
        let (mut m, mut t, _) = setup(512); // 1 GiB
        let out = scan_and_classify(&mut m, &mut t, Ns::ZERO, false);
        // 1 GiB of base pages = 262144 entries * 6 ns ~ 1.6 ms + shootdown.
        let expect = m.cfg.scan.scan_time(512 * (2 << 20), PageSize::Base4K);
        assert!(out.scan_time > expect);
        assert!(out.scan_time < expect + Ns::millis(1));
        assert_eq!(m.tlb.stats().shootdowns, 1);
        let _ = GIB;
    }
}
