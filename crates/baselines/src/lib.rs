//! # hemem-baselines
//!
//! Every tiered-memory manager the paper compares HeMem against, built on
//! the same machine model: Intel Optane Memory Mode hardware caching
//! ([`memory_mode`]), Linux Nimble kernel scanning/migration ([`nimble`]),
//! X-Mem static placement and the DRAM/NVM reference configurations
//! ([`static_tier`]), and HeMem's own page-table-scanning ablation
//! variants ([`pt_hemem`]).

#![warn(missing_docs)]

pub mod any;
pub mod memory_mode;
pub mod nimble;
pub mod pt_hemem;
pub mod scan;
pub mod spill3;
pub mod static_tier;
pub mod thermostat;

pub use any::{AnyBackend, BackendKind};
pub use memory_mode::{MemoryMode, MemoryModeStats};
pub use nimble::{Nimble, NimbleConfig, NimbleStats};
pub use pt_hemem::{HeMemPt, PtMode, PtStats};
pub use scan::{scan_and_classify, ScanOutcome};
pub use spill3::SpillTier3;
pub use static_tier::{StaticPolicy, StaticTier};
pub use thermostat::{Thermostat, ThermostatConfig, ThermostatStats};
