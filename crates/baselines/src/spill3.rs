//! Naive three-tier spill-at-allocation baseline.
//!
//! The dumbest possible use of an SSD capacity tier: fill DRAM, then
//! NVM, then spill everything else onto the SSD at allocation time and
//! never move a page again. SSD-resident pages major-fault on every
//! touch and are put straight back (no promotion), so a hot page that
//! happened to arrive late is stuck behind the swap queue forever. The
//! managed N-tier policy must beat this to justify its machinery.

use hemem_core::backend::{TickOutput, TieredBackend};
use hemem_core::machine::MachineCore;
use hemem_sim::Ns;
use hemem_vmm::{PageId, PageState, RegionId, Tier};

/// The spill-at-allocation backend.
pub struct SpillTier3 {
    /// Size under which allocations are forwarded to the kernel (same
    /// threshold HeMem uses, so workloads see identical region kinds).
    small_threshold: u64,
}

impl SpillTier3 {
    /// Spill baseline with HeMem's default 1 GB manage threshold.
    pub fn new() -> SpillTier3 {
        SpillTier3 {
            small_threshold: 1 << 30,
        }
    }

    /// Spill baseline with a custom manage threshold.
    pub fn with_threshold(small_threshold: u64) -> SpillTier3 {
        SpillTier3 { small_threshold }
    }
}

impl Default for SpillTier3 {
    fn default() -> Self {
        SpillTier3::new()
    }
}

impl TieredBackend for SpillTier3 {
    fn name(&self) -> &'static str {
        "Spill3"
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        len >= self.small_threshold
    }

    fn on_mmap(&mut self, _m: &mut MachineCore, _region: RegionId) {}

    fn on_munmap(&mut self, _m: &mut MachineCore, _region: RegionId) {}

    fn place(&mut self, m: &mut MachineCore, page: PageId, _is_write: bool) -> Tier {
        // A page already spilled to the SSD stays there: this baseline
        // never promotes, so every repeat touch pays the major fault.
        if let PageState::Mapped {
            tier: Tier::Ssd, ..
        } = m.space.region(page.region).state(page.index)
        {
            return Tier::Ssd;
        }
        if m.dram_pool.free_pages() > 0 {
            Tier::Dram
        } else if m.nvm_pool.free_pages() > 0 {
            Tier::Nvm
        } else if m.has_ssd() && m.ssd_pool.free_pages() > 0 {
            Tier::Ssd
        } else {
            // Everything full (or no tier-3 device): let the fault path's
            // fallback and direct reclaim sort it out.
            Tier::Nvm
        }
    }

    fn placed(&mut self, _m: &mut MachineCore, _page: PageId, _tier: Tier) {}

    fn tick(&mut self, _m: &mut MachineCore, _now: Ns) -> TickOutput {
        TickOutput {
            next_wake: None,
            migrations: Vec::new(),
            swap_outs: Vec::new(),
            cpu_time: Ns::ZERO,
        }
    }

    fn migration_done(&mut self, _m: &mut MachineCore, _page: PageId, _dst: Tier) {
        unreachable!("the spill baseline never migrates");
    }

    fn background_threads(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::machine::MachineConfig;
    use hemem_core::runtime::Sim;
    use hemem_memdev::GIB;

    #[test]
    fn fills_dram_then_nvm_then_spills_to_ssd() {
        let mc = MachineConfig::small(1, 2).with_tier3(16 * GIB);
        let mut s = Sim::new(mc, SpillTier3::new());
        let id = s.mmap(4 * GIB); // 1 GiB over DRAM+NVM
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(r.mapped_pages(), 2048, "every page mapped somewhere");
        assert_eq!(r.dram_pages(), 512, "DRAM filled first");
        assert_eq!(s.m.nvm_pool.free_pages(), 0, "NVM filled second");
        assert_eq!(r.ssd_pages(), 512, "overflow spilled to the SSD");
    }

    #[test]
    fn ssd_pages_never_promote() {
        let mc = MachineConfig::small(1, 2).with_tier3(16 * GIB);
        let mut s = Sim::new(mc, SpillTier3::new());
        let id = s.mmap(4 * GIB);
        s.populate(id, true);
        let spilled = s.m.space.region(id).ssd_pages();
        assert!(spilled > 0);
        // Touch the whole region repeatedly; the spilled set must not
        // shrink (no promotion path in this baseline).
        let batch =
            hemem_core::backend::AccessBatch::uniform(id, 0, 2048, 500_000, 8, 0.2, 4 * GIB);
        for _ in 0..3 {
            s.submit_batch(0, &batch);
            loop {
                match s.step() {
                    Some((_, hemem_core::runtime::Event::ThreadReady(_))) | None => break,
                    Some(_) => {}
                }
            }
        }
        assert_eq!(s.m.space.region(id).ssd_pages(), spilled);
        assert!(s.m.stats.swap_ins == 0, "no page ever promoted back");
    }

    #[test]
    fn without_tier3_behaves_like_dram_then_nvm() {
        let mut s = Sim::new(MachineConfig::small(1, 4), SpillTier3::new());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(r.dram_pages(), 512);
        assert_eq!(r.mapped_pages(), 1024);
        assert_eq!(r.ssd_pages(), 0);
    }
}
