//! Type-erased backend selection for the experiment harness.
//!
//! Experiment binaries run the same workload over many backends; this
//! enum avoids monomorphizing every experiment per backend while keeping
//! `Sim<AnyBackend>` a single concrete type.

use hemem_core::backend::{SegmentAccess, TickOutput, TierSplit, TieredBackend};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::{MachineConfig, MachineCore};
use hemem_memdev::Pattern;
use hemem_pebs::SampleRecord;
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

use crate::memory_mode::MemoryMode;
use crate::nimble::Nimble;
use crate::pt_hemem::{HeMemPt, PtMode};
use crate::spill3::SpillTier3;
use crate::static_tier::StaticTier;
use crate::thermostat::Thermostat;

/// Any of the tiered memory managers under evaluation.
pub enum AnyBackend {
    /// HeMem (the paper's system).
    HeMem(HeMem),
    /// Intel Memory Mode.
    Mm(MemoryMode),
    /// Linux Nimble.
    Nimble(Nimble),
    /// HeMem with page-table scanning.
    Pt(HeMemPt),
    /// Static placement (X-Mem / DRAM / NVM).
    Static(StaticTier),
    /// Thermostat (PTE-poisoning page sampling).
    Thermostat(Thermostat),
    /// Naive three-tier spill-at-allocation.
    Spill3(SpillTier3),
}

/// Backend selector for experiment configuration files / CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// HeMem with PEBS and DMA (paper configuration).
    HeMem,
    /// HeMem copying with threads instead of DMA (Figure 7's "HeMem-threads").
    HeMemThreads,
    /// Intel Optane Memory Mode.
    MemoryMode,
    /// Linux Nimble.
    Nimble,
    /// X-Mem emulation (large structures statically in NVM).
    XMem,
    /// Everything in DRAM.
    DramOnly,
    /// Everything in NVM.
    NvmOnly,
    /// HeMem with synchronous page-table scanning.
    PtSync,
    /// HeMem with asynchronous page-table scanning.
    PtAsync,
    /// Thermostat: PTE-poisoning sampling (related work, §6).
    Thermostat,
    /// Naive three-tier spill-at-allocation baseline (tierbench).
    Spill3,
}

impl BackendKind {
    /// All kinds, for sweeps.
    pub const ALL: [BackendKind; 11] = [
        BackendKind::HeMem,
        BackendKind::HeMemThreads,
        BackendKind::MemoryMode,
        BackendKind::Nimble,
        BackendKind::XMem,
        BackendKind::DramOnly,
        BackendKind::NvmOnly,
        BackendKind::PtSync,
        BackendKind::PtAsync,
        BackendKind::Thermostat,
        BackendKind::Spill3,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::HeMem => "HeMem",
            BackendKind::HeMemThreads => "HeMem-threads",
            BackendKind::MemoryMode => "MM",
            BackendKind::Nimble => "Nimble",
            BackendKind::XMem => "X-Mem",
            BackendKind::DramOnly => "DRAM",
            BackendKind::NvmOnly => "NVM",
            BackendKind::PtSync => "HeMem-PT-Sync",
            BackendKind::PtAsync => "HeMem-PT-Async",
            BackendKind::Thermostat => "Thermostat",
            BackendKind::Spill3 => "Spill3",
        }
    }

    /// Parses a label (case-insensitive; accepts the forms used on the
    /// experiment CLIs).
    pub fn parse(s: &str) -> Option<BackendKind> {
        let k = s.to_ascii_lowercase();
        Some(match k.as_str() {
            "hemem" => BackendKind::HeMem,
            "hemem-threads" | "hememthreads" => BackendKind::HeMemThreads,
            "mm" | "memorymode" | "memory-mode" => BackendKind::MemoryMode,
            "nimble" => BackendKind::Nimble,
            "xmem" | "x-mem" => BackendKind::XMem,
            "dram" | "dramonly" => BackendKind::DramOnly,
            "nvm" | "nvmonly" => BackendKind::NvmOnly,
            "ptsync" | "hemem-pt-sync" | "pt-sync" => BackendKind::PtSync,
            "ptasync" | "hemem-pt-async" | "pt-async" => BackendKind::PtAsync,
            "thermostat" => BackendKind::Thermostat,
            "spill3" | "spill-3" | "spill" => BackendKind::Spill3,
            _ => return None,
        })
    }

    /// Instantiates the backend, scaled to the machine.
    pub fn build(self, mc: &MachineConfig) -> AnyBackend {
        let cfg = HeMemConfig::scaled_for(mc);
        match self {
            BackendKind::HeMem => AnyBackend::HeMem(HeMem::new(cfg)),
            BackendKind::HeMemThreads => {
                let mut cfg = cfg;
                cfg.policy.use_dma = false;
                AnyBackend::HeMem(HeMem::new(cfg))
            }
            BackendKind::MemoryMode => AnyBackend::Mm(MemoryMode::new(mc.dram.capacity)),
            BackendKind::Nimble => AnyBackend::Nimble(Nimble::paper()),
            BackendKind::XMem => {
                AnyBackend::Static(StaticTier::xmem_with_threshold(cfg.manage_threshold))
            }
            BackendKind::DramOnly => AnyBackend::Static(StaticTier::dram_only()),
            BackendKind::NvmOnly => AnyBackend::Static(StaticTier::nvm_only()),
            BackendKind::PtSync => AnyBackend::Pt(HeMemPt::new(cfg, PtMode::Sync)),
            BackendKind::PtAsync => AnyBackend::Pt(HeMemPt::new(cfg, PtMode::Async)),
            BackendKind::Thermostat => AnyBackend::Thermostat(Thermostat::paper()),
            BackendKind::Spill3 => {
                AnyBackend::Spill3(SpillTier3::with_threshold(cfg.manage_threshold))
            }
        }
    }
}

macro_rules! delegate {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            AnyBackend::HeMem($b) => $e,
            AnyBackend::Mm($b) => $e,
            AnyBackend::Nimble($b) => $e,
            AnyBackend::Pt($b) => $e,
            AnyBackend::Static($b) => $e,
            AnyBackend::Thermostat($b) => $e,
            AnyBackend::Spill3($b) => $e,
        }
    };
}

impl TieredBackend for AnyBackend {
    fn name(&self) -> &'static str {
        delegate!(self, b => b.name())
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        delegate!(self, b => b.wants_to_manage(len))
    }

    fn on_mmap(&mut self, m: &mut MachineCore, region: RegionId) {
        delegate!(self, b => b.on_mmap(m, region))
    }

    fn on_munmap(&mut self, m: &mut MachineCore, region: RegionId) {
        delegate!(self, b => b.on_munmap(m, region))
    }

    fn place(&mut self, m: &mut MachineCore, page: PageId, is_write: bool) -> Tier {
        delegate!(self, b => b.place(m, page, is_write))
    }

    fn placed(&mut self, m: &mut MachineCore, page: PageId, tier: Tier) {
        delegate!(self, b => b.placed(m, page, tier))
    }

    fn split(
        &mut self,
        m: &mut MachineCore,
        seg: &SegmentAccess,
        object_size: u32,
        pattern: Pattern,
        reads: f64,
        writes: f64,
    ) -> TierSplit {
        delegate!(self, b => b.split(m, seg, object_size, pattern, reads, writes))
    }

    fn uses_pebs(&self) -> bool {
        delegate!(self, b => b.uses_pebs())
    }

    fn on_samples(&mut self, m: &mut MachineCore, samples: &[SampleRecord], now: Ns) {
        delegate!(self, b => b.on_samples(m, samples, now))
    }

    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput {
        delegate!(self, b => b.tick(m, now))
    }

    fn migration_done(&mut self, m: &mut MachineCore, page: PageId, dst: Tier) {
        delegate!(self, b => b.migration_done(m, page, dst))
    }

    fn migration_aborted(&mut self, m: &mut MachineCore, page: PageId, current: Tier) {
        delegate!(self, b => b.migration_aborted(m, page, current))
    }

    fn swapped_out(&mut self, m: &mut MachineCore, page: PageId) {
        delegate!(self, b => b.swapped_out(m, page))
    }

    fn background_threads(&self) -> u32 {
        delegate!(self, b => b.background_threads())
    }

    fn reclaim_victim(&mut self, m: &mut MachineCore) -> Option<PageId> {
        delegate!(self, b => b.reclaim_victim(m))
    }

    fn recover(&mut self, m: &mut MachineCore, now: Ns) {
        delegate!(self, b => b.recover(m, now))
    }

    fn audit(&self, m: &MachineCore) -> Vec<hemem_core::audit::AuditViolation> {
        delegate!(self, b => b.audit(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind), "{kind:?}");
        }
        assert_eq!(BackendKind::parse("bogus"), None);
    }

    #[test]
    fn build_produces_matching_backend() {
        let mc = MachineConfig::small(1, 4);
        for kind in BackendKind::ALL {
            let b = kind.build(&mc);
            assert_eq!(b.name(), kind.label(), "{kind:?}");
        }
    }

    #[test]
    fn hemem_threads_variant_uses_copy_threads() {
        let mc = MachineConfig::small(1, 4);
        let b = BackendKind::HeMemThreads.build(&mc);
        assert!(b.background_threads() > BackendKind::HeMem.build(&mc).background_threads());
    }
}
