//! Intel Optane DC "Memory Mode" — hardware tiered memory (§2.4).
//!
//! All data lives physically in NVM; DRAM acts as a direct-mapped, 64 B
//! line cache managed entirely by the memory controller. Software sees a
//! single flat pool the size of NVM. Hits are served at DRAM speed; misses
//! fetch the line from NVM and fill it into DRAM, possibly evicting a
//! conflicting line — and if that victim is dirty, writing it back to NVM
//! (random 64 B writes: the worst case for Optane bandwidth and wear).

use hemem_memdev::{CacheOutcome, DramCache, DramCacheConfig, MemOp, Pattern};
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

use hemem_core::backend::{SegmentAccess, TickOutput, TierSplit, TieredBackend, Traffic};
use hemem_core::machine::MachineCore;

/// Memory-mode statistics (scaled to real access counts).
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct MemoryModeStats {
    /// Estimated cache hits.
    pub hits: u64,
    /// Estimated cache misses.
    pub misses: u64,
    /// Estimated dirty write-backs to NVM.
    pub writebacks: u64,
}

/// The Memory Mode backend.
pub struct MemoryMode {
    cache: DramCache,
    stats: MemoryModeStats,
    /// Long-run hit-ratio fallback for batches too small to sample.
    ewma_hit: f64,
    ewma_dirty: f64,
}

impl MemoryMode {
    /// Builds memory mode over the machine's DRAM capacity.
    pub fn new(dram_bytes: u64) -> MemoryMode {
        MemoryMode {
            cache: DramCache::new(DramCacheConfig::memory_mode(dram_bytes)),
            stats: MemoryModeStats::default(),
            ewma_hit: 1.0,
            ewma_dirty: 0.0,
        }
    }

    /// Builds memory mode with an explicit cache configuration (tests use
    /// exact, unsampled caches).
    pub fn with_cache(config: DramCacheConfig) -> MemoryMode {
        MemoryMode {
            cache: DramCache::new(config),
            stats: MemoryModeStats::default(),
            ewma_hit: 1.0,
            ewma_dirty: 0.0,
        }
    }

    /// Scaled statistics.
    pub fn stats(&self) -> &MemoryModeStats {
        &self.stats
    }

    /// Current estimated hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.ewma_hit
    }
}

impl TieredBackend for MemoryMode {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn wants_to_manage(&self, _len: u64) -> bool {
        // Hardware sees one flat pool: every mapping is "managed" (placed
        // in NVM behind the cache). Page size is irrelevant to the cache.
        true
    }

    fn on_mmap(&mut self, _m: &mut MachineCore, _region: RegionId) {}

    fn on_munmap(&mut self, _m: &mut MachineCore, _region: RegionId) {}

    fn place(&mut self, _m: &mut MachineCore, _page: PageId, _is_write: bool) -> Tier {
        // Physical home of every line is NVM; DRAM is a cache in front.
        Tier::Nvm
    }

    fn placed(&mut self, m: &mut MachineCore, page: PageId, _tier: Tier) {
        // First touch streams the page through the cache (the zero-fill /
        // warm-up write); prime the sampled tag store so the simulated
        // cache reflects the populated state instead of starting cold.
        let region = m.space.region(page.region);
        let base = region.page_addr(page.index).0;
        let bytes = region.page_size().bytes();
        let stride = self.cache.line_size() << self.cache.config_shift();
        let mut addr = base;
        while addr < base + bytes {
            self.cache.access(addr, true);
            addr += stride;
        }
    }

    fn split(
        &mut self,
        m: &mut MachineCore,
        seg: &SegmentAccess,
        object_size: u32,
        pattern: Pattern,
        reads: f64,
        writes: f64,
    ) -> TierSplit {
        let total = reads + writes;
        if total <= 0.0 {
            return TierSplit::default();
        }
        let region = m.space.region(seg.region);
        let base = region.page_addr(seg.lo_page).0;
        let span = (seg.hi_page - seg.lo_page) * region.page_size().bytes();
        let write_frac = writes / total;

        // Sample the direct-mapped cache: each simulated access stands for
        // `scale` real ones. Bound per-batch work; fall back to the EWMA
        // ratios when the batch is too small to sample.
        let scale = self.cache.scale() as f64;
        let want = (total / scale).min(16384.0);
        let n = m.rng.round_stochastic(want);
        let (hit_ratio, dirty_ratio) = if n == 0 {
            (self.ewma_hit, self.ewma_dirty)
        } else {
            let mut hits = 0u64;
            let mut dirty = 0u64;
            for _ in 0..n {
                let addr = base + m.rng.gen_range(span);
                let is_write = m.rng.bernoulli(write_frac);
                match self.cache.access(addr, is_write) {
                    CacheOutcome::Hit => hits += 1,
                    CacheOutcome::Miss { dirty_evict } => {
                        if dirty_evict {
                            dirty += 1;
                        }
                    }
                }
            }
            let h = hits as f64 / n as f64;
            let d = dirty as f64 / n as f64;
            self.ewma_hit = 0.9 * self.ewma_hit + 0.1 * h;
            self.ewma_dirty = 0.9 * self.ewma_dirty + 0.1 * d;
            (h, d)
        };

        let hits = total * hit_ratio;
        let misses = total * (1.0 - hit_ratio);
        let writebacks = total * dirty_ratio;
        self.stats.hits += hits as u64;
        self.stats.misses += misses as u64;
        self.stats.writebacks += writebacks as u64;

        let line = self.cache.line_size() as u32;
        let mut traffic = Vec::with_capacity(4);
        // Hits (and the DRAM side of every miss fill) run at DRAM speed.
        if hits > 0.0 {
            traffic.push(Traffic {
                tier: Tier::Dram,
                op: MemOp::Read,
                pattern,
                size: object_size,
                count: hits * (1.0 - write_frac),
            });
            traffic.push(Traffic {
                tier: Tier::Dram,
                op: MemOp::Write,
                pattern,
                size: object_size,
                count: hits * write_frac,
            });
        }
        if misses > 0.0 {
            // Line fetch from NVM (random 64 B -> amplified to the 256 B
            // media granularity by the device model) plus the DRAM fill.
            traffic.push(Traffic {
                tier: Tier::Nvm,
                op: MemOp::Read,
                pattern: Pattern::Random,
                size: line,
                count: misses,
            });
            traffic.push(Traffic {
                tier: Tier::Dram,
                op: MemOp::Write,
                pattern: Pattern::Random,
                size: line,
                count: misses,
            });
        }
        if writebacks > 0.0 {
            traffic.push(Traffic {
                tier: Tier::Nvm,
                op: MemOp::Write,
                pattern: Pattern::Random,
                size: line,
                count: writebacks,
            });
        }
        TierSplit {
            traffic,
            nvm_load_fraction: 1.0 - hit_ratio,
            // Tag check adds a small constant on every access.
            extra_latency: Ns::nanos(5),
        }
    }

    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput {
        // Pure hardware: no background threads, no further wake-ups. The
        // single tick still marks the trace so baseline traces share a
        // comparable policy lane.
        m.trace
            .instant(now, "memory_mode_tick", "policy", &[("direct_mapped", 1)]);
        TickOutput {
            next_wake: None,
            migrations: Vec::new(),
            swap_outs: Vec::new(),
            cpu_time: Ns::ZERO,
        }
    }

    fn migration_done(&mut self, _m: &mut MachineCore, _page: PageId, _dst: Tier) {
        unreachable!("memory mode never issues page migrations");
    }

    fn background_threads(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::backend::AccessBatch;
    use hemem_core::machine::MachineConfig;
    use hemem_core::runtime::Sim;
    use hemem_memdev::GIB;

    fn mm_sim(dram_gib: u64, nvm_gib: u64, shift: u32) -> Sim<MemoryMode> {
        let mc = MachineConfig::small(dram_gib, nvm_gib);
        let mm = MemoryMode::with_cache(DramCacheConfig {
            dram_bytes: dram_gib * GIB,
            line_size: 64,
            sample_shift: shift,
        });
        Sim::new(mc, mm)
    }

    fn pump(s: &mut Sim<MemoryMode>, batch: &AccessBatch, times: usize) {
        for _ in 0..times {
            s.submit_batch(0, batch);
            while let Some((_, ev)) = s.step() {
                if matches!(ev, hemem_core::runtime::Event::ThreadReady(_)) {
                    break;
                }
            }
        }
    }

    #[test]
    fn all_pages_physically_in_nvm() {
        let mut s = mm_sim(1, 8, 8);
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(r.dram_pages(), 0);
        assert_eq!(r.mapped_pages(), 1024);
    }

    #[test]
    fn small_working_set_hits_in_cache() {
        let mut s = mm_sim(1, 8, 4);
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        // Hammer 64 MiB (way below the 1 GiB cache).
        let batch = AccessBatch::uniform(id, 0, 32, 500_000, 8, 0.1, 64 << 20);
        pump(&mut s, &batch, 40);
        assert!(
            s.backend.hit_ratio() > 0.9,
            "hit ratio {}",
            s.backend.hit_ratio()
        );
    }

    #[test]
    fn oversized_working_set_mostly_misses_and_wears_nvm() {
        let mut s = mm_sim(1, 8, 4);
        let id = s.mmap(4 * GIB);
        s.populate(id, true);
        let wear0 = s.m.nvm_wear_bytes();
        let batch = AccessBatch::uniform(id, 0, 2048, 500_000, 8, 0.5, 4 * GIB);
        pump(&mut s, &batch, 20);
        assert!(
            s.backend.hit_ratio() < 0.5,
            "hit ratio {}",
            s.backend.hit_ratio()
        );
        assert!(s.m.nvm_wear_bytes() > wear0, "dirty evictions wrote NVM");
        assert!(s.backend.stats().writebacks > 0);
    }

    #[test]
    fn conflict_misses_appear_below_capacity() {
        // Working set = half the cache: a direct-mapped cache still
        // conflicts (the Figure 5 MM degradation before DRAM is full).
        let mut s = mm_sim(1, 8, 4);
        let id = s.mmap(GIB / 2);
        s.populate(id, true);
        let batch = AccessBatch::uniform(id, 0, 256, 500_000, 8, 0.0, GIB / 2);
        pump(&mut s, &batch, 60);
        let h = s.backend.hit_ratio();
        assert!(h < 0.999, "some conflict misses must occur: {h}");
        assert!(h > 0.5, "but most accesses hit: {h}");
    }

    #[test]
    fn no_background_threads_or_migrations() {
        let mm = MemoryMode::new(GIB);
        assert_eq!(mm.background_threads(), 0);
        assert_eq!(mm.name(), "MM");
        assert!(mm.wants_to_manage(1));
    }
}
