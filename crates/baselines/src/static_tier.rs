//! Static-placement baselines: X-Mem emulation, DRAM-only, NVM-only.
//!
//! X-Mem (Dulloor et al., EuroSys'16) profiles applications offline and
//! statically places large, randomly-accessed heap structures in NVM and
//! small/hot ones in DRAM. The paper emulates it by directing large
//! allocations to the NVM DAX file (§5.1: "To run GUPS in NVM, we modify
//! mmap to map memory from the NVM DAX file. This configuration emulates
//! X-Mem"). `DramOnly`/`NvmOnly` pin *all* placements to one tier and are
//! used for the "DRAM"/"NVM" reference curves.

use hemem_core::backend::{TickOutput, TieredBackend};
use hemem_core::machine::MachineCore;
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

/// Where a static backend sends large allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticPolicy {
    /// Large heap structures to NVM, small allocations to DRAM (X-Mem).
    XMem,
    /// Everything in DRAM (reference upper bound).
    DramOnly,
    /// Everything in NVM (reference lower bound).
    NvmOnly,
}

/// A backend with fixed placement and no migration.
pub struct StaticTier {
    policy: StaticPolicy,
    /// Size under which X-Mem keeps allocations in DRAM.
    small_threshold: u64,
}

impl StaticTier {
    /// X-Mem emulation: allocations >= 1 GB to NVM.
    pub fn xmem() -> StaticTier {
        StaticTier {
            policy: StaticPolicy::XMem,
            small_threshold: 1 << 30,
        }
    }

    /// X-Mem with a custom large-allocation threshold.
    pub fn xmem_with_threshold(small_threshold: u64) -> StaticTier {
        StaticTier {
            policy: StaticPolicy::XMem,
            small_threshold,
        }
    }

    /// All-DRAM reference.
    pub fn dram_only() -> StaticTier {
        StaticTier {
            policy: StaticPolicy::DramOnly,
            small_threshold: 0,
        }
    }

    /// All-NVM reference.
    pub fn nvm_only() -> StaticTier {
        StaticTier {
            policy: StaticPolicy::NvmOnly,
            small_threshold: 0,
        }
    }

    /// The placement policy.
    pub fn policy(&self) -> StaticPolicy {
        self.policy
    }
}

impl TieredBackend for StaticTier {
    fn name(&self) -> &'static str {
        match self.policy {
            StaticPolicy::XMem => "X-Mem",
            StaticPolicy::DramOnly => "DRAM",
            StaticPolicy::NvmOnly => "NVM",
        }
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        match self.policy {
            StaticPolicy::XMem => len >= self.small_threshold,
            // Reference configurations place everything explicitly.
            StaticPolicy::DramOnly | StaticPolicy::NvmOnly => true,
        }
    }

    fn on_mmap(&mut self, _m: &mut MachineCore, _region: RegionId) {}

    fn on_munmap(&mut self, _m: &mut MachineCore, _region: RegionId) {}

    fn place(&mut self, _m: &mut MachineCore, _page: PageId, _is_write: bool) -> Tier {
        match self.policy {
            StaticPolicy::XMem => Tier::Nvm,
            StaticPolicy::DramOnly => Tier::Dram,
            StaticPolicy::NvmOnly => Tier::Nvm,
        }
    }

    fn placed(&mut self, _m: &mut MachineCore, _page: PageId, _tier: Tier) {}

    fn tick(&mut self, _m: &mut MachineCore, _now: Ns) -> TickOutput {
        TickOutput {
            next_wake: None,
            migrations: Vec::new(),
            swap_outs: Vec::new(),
            cpu_time: Ns::ZERO,
        }
    }

    fn migration_done(&mut self, _m: &mut MachineCore, _page: PageId, _dst: Tier) {
        unreachable!("static backends never migrate");
    }

    fn background_threads(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::machine::MachineConfig;
    use hemem_core::runtime::Sim;
    use hemem_memdev::GIB;

    #[test]
    fn xmem_places_large_in_nvm_small_in_dram() {
        let mut s = Sim::new(MachineConfig::small(4, 16), StaticTier::xmem());
        let big = s.mmap(2 * GIB);
        s.populate(big, true);
        let r = s.m.space.region(big);
        assert_eq!(r.dram_pages(), 0, "large allocation entirely in NVM");
        assert_eq!(r.mapped_pages(), 1024);
        let small = s.mmap(1 << 20);
        s.populate(small, true);
        let r = s.m.space.region(small);
        assert_eq!(r.kind(), hemem_vmm::RegionKind::SmallAnon);
        assert_eq!(r.dram_pages(), r.mapped_pages(), "small allocation in DRAM");
    }

    #[test]
    fn dram_only_ignores_nvm() {
        let mut s = Sim::new(MachineConfig::small(8, 16), StaticTier::dram_only());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        assert_eq!(s.m.space.region(id).dram_pages(), 1024);
        assert_eq!(s.m.nvm_pool.allocated_pages(), 0);
    }

    #[test]
    fn nvm_only_ignores_dram() {
        let mut s = Sim::new(MachineConfig::small(8, 16), StaticTier::nvm_only());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        assert_eq!(s.m.space.region(id).dram_pages(), 0);
        assert_eq!(s.m.nvm_pool.allocated_pages(), 1024);
    }

    #[test]
    fn no_background_activity() {
        let b = StaticTier::xmem();
        assert_eq!(b.background_threads(), 0);
        assert_eq!(b.name(), "X-Mem");
        assert_eq!(StaticTier::dram_only().name(), "DRAM");
        assert_eq!(StaticTier::nvm_only().name(), "NVM");
    }
}
