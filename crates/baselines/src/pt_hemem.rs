//! HeMem variants that replace PEBS with page-table scanning (§5.1,
//! Figures 8, 9, 15, 16: "PT Scan + M. Sync" / "PT Scan + M. Async" /
//! "HeMem-PT-Async").
//!
//! Policy, queues, cooling, DMA migration — everything matches HeMem; only
//! the hotness *source* differs: accessed/dirty bits harvested by
//! scanning, either on the same thread as migration (`Sync` — long
//! migrations delay the next scan, exactly Figure 4b's pathology) or on a
//! dedicated scanning thread (`Async` — scans are timely but still
//! overestimate the hot set because a single accessed bit carries far
//! less information than a stream of samples).

use hemem_core::backend::{TickOutput, TieredBackend};
use hemem_core::hemem::{run_policy, HeMemConfig, PageTracker};
use hemem_core::machine::MachineCore;
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

use crate::scan::scan_and_classify;

/// Threading of the scanner relative to migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtMode {
    /// One thread scans and migrates sequentially.
    Sync,
    /// A dedicated scan thread; policy/migration runs on its own 10 ms
    /// cadence.
    Async,
}

/// Statistics for the PT variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct PtStats {
    /// Scan passes.
    pub scans: u64,
    /// Pages marked hot over all scans.
    pub marked_hot: u64,
    /// Policy passes.
    pub policy_runs: u64,
}

/// HeMem with page-table scanning instead of PEBS.
pub struct HeMemPt {
    cfg: HeMemConfig,
    mode: PtMode,
    tracker: PageTracker,
    stats: PtStats,
    /// When the scanner thread is next free (Async) / pass end (Sync).
    scanner_free: Ns,
    /// Whether migration is enabled (Figure 8's "PT Scan" bar disables it).
    migrate: bool,
}

impl HeMemPt {
    /// Creates a PT variant of HeMem.
    pub fn new(cfg: HeMemConfig, mode: PtMode) -> HeMemPt {
        HeMemPt {
            tracker: PageTracker::new(cfg.tracker.clone()),
            cfg,
            mode,
            stats: PtStats::default(),
            scanner_free: Ns::ZERO,
            migrate: true,
        }
    }

    /// Paper-default PT variant.
    pub fn paper(mode: PtMode) -> HeMemPt {
        HeMemPt::new(HeMemConfig::paper(), mode)
    }

    /// Disables migration (scan-overhead-only configuration of Figure 8).
    pub fn without_migration(mut self) -> HeMemPt {
        self.migrate = false;
        self
    }

    /// Statistics.
    pub fn stats(&self) -> &PtStats {
        &self.stats
    }

    /// The tracker, for experiment introspection.
    pub fn tracker(&self) -> &PageTracker {
        &self.tracker
    }

    /// The scanning mode.
    pub fn mode(&self) -> PtMode {
        self.mode
    }
}

impl TieredBackend for HeMemPt {
    fn name(&self) -> &'static str {
        match self.mode {
            PtMode::Sync => "HeMem-PT-Sync",
            PtMode::Async => "HeMem-PT-Async",
        }
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        len >= self.cfg.manage_threshold
    }

    fn on_mmap(&mut self, m: &mut MachineCore, region: RegionId) {
        let r = m.space.region(region);
        if r.kind() == hemem_vmm::RegionKind::ManagedHeap {
            self.tracker.add_region(region, r.page_count());
        }
    }

    fn on_munmap(&mut self, _m: &mut MachineCore, region: RegionId) {
        self.tracker.remove_region(region);
    }

    fn place(&mut self, m: &mut MachineCore, _page: PageId, _is_write: bool) -> Tier {
        if m.dram_pool.free_pages() > 0 {
            Tier::Dram
        } else {
            Tier::Nvm
        }
    }

    fn placed(&mut self, _m: &mut MachineCore, page: PageId, tier: Tier) {
        self.tracker.placed(page, tier);
    }

    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput {
        match self.mode {
            PtMode::Sync => {
                // Scan, then migrate, all on one thread: the next pass
                // waits for both.
                let scan = scan_and_classify(m, &mut self.tracker, now, true);
                self.stats.scans += 1;
                self.stats.marked_hot += scan.marked_hot;
                let migrations = if self.migrate {
                    self.stats.policy_runs += 1;
                    run_policy(&self.cfg.policy, &mut self.tracker, m, now)
                } else {
                    Vec::new()
                };
                let bytes = migrations.len() as u64 * m.cfg.managed_page.bytes();
                let migrate_wall = Ns::from_secs_f64(bytes as f64 / self.cfg.policy.migration_rate);
                let busy = scan.scan_time + migrate_wall;
                TickOutput {
                    next_wake: Some(now + busy.max(self.cfg.policy.period)),
                    migrations,
                    swap_outs: Vec::new(),
                    cpu_time: busy,
                }
            }
            PtMode::Async => {
                // Policy cadence is fixed; the scanner runs back-to-back on
                // its own thread, so a new scan starts whenever the
                // previous one has finished.
                if now >= self.scanner_free {
                    let scan = scan_and_classify(m, &mut self.tracker, now, true);
                    self.stats.scans += 1;
                    self.stats.marked_hot += scan.marked_hot;
                    self.scanner_free = now + scan.scan_time;
                }
                let migrations = if self.migrate {
                    self.stats.policy_runs += 1;
                    run_policy(&self.cfg.policy, &mut self.tracker, m, now)
                } else {
                    Vec::new()
                };
                TickOutput {
                    next_wake: Some(now + self.cfg.policy.period),
                    migrations,
                    swap_outs: Vec::new(),
                    cpu_time: Ns::micros(50),
                }
            }
        }
    }

    fn migration_done(&mut self, _m: &mut MachineCore, page: PageId, dst: Tier) {
        self.tracker.placed(page, dst);
    }

    fn migration_aborted(&mut self, _m: &mut MachineCore, page: PageId, current: Tier) {
        self.tracker.placed(page, current);
    }

    fn background_threads(&self) -> u32 {
        match self.mode {
            PtMode::Sync => 1,
            PtMode::Async => 2, // scanner + policy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::machine::MachineConfig;
    use hemem_core::runtime::Sim;
    use hemem_memdev::GIB;

    fn sim(mode: PtMode) -> Sim<HeMemPt> {
        let mc = MachineConfig::small(1, 8);
        let cfg = HeMemConfig::scaled_for(&mc);
        Sim::new(mc, HeMemPt::new(cfg, mode))
    }

    #[test]
    fn async_scans_more_often_than_sync_under_migration_load() {
        for (mode, _name) in [(PtMode::Sync, "sync"), (PtMode::Async, "async")] {
            let mut s = sim(mode);
            let id = s.mmap(4 * GIB);
            s.populate(id, true);
            // Keep the whole working set looking hot.
            for _ in 0..20 {
                s.m.space.region_mut(id).ledger.add(0, 2048, 1e8, 1e6);
                s.advance(Ns::millis(50));
            }
            assert!(s.backend.stats().scans >= 1);
            assert!(s.m.stats.migrations_started > 0);
        }
    }

    #[test]
    fn overestimates_hot_set_with_uniform_traffic() {
        let mut s = sim(PtMode::Async);
        let id = s.mmap(4 * GIB);
        s.populate(id, true);
        // Uniform traffic: PEBS would find no stable hot set, but accessed
        // bits saturate (lambda >> 1 per page per scan interval).
        s.m.space.region_mut(id).ledger.add(0, 2048, 2e7, 0.0);
        s.advance(Ns::millis(30));
        let hot = s.backend.stats().marked_hot;
        assert!(hot > 1500, "most of memory misclassified hot: {hot}/2048");
    }

    #[test]
    fn without_migration_never_migrates() {
        let mc = MachineConfig::small(1, 8);
        let cfg = HeMemConfig::scaled_for(&mc);
        let mut s = Sim::new(mc, HeMemPt::new(cfg, PtMode::Async).without_migration());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.m.space.region_mut(id).ledger.add(0, 1024, 1e8, 1e8);
        s.advance(Ns::millis(200));
        assert!(s.backend.stats().scans > 0);
        assert_eq!(s.m.stats.migrations_started, 0);
    }

    #[test]
    fn names_and_threads() {
        assert_eq!(HeMemPt::paper(PtMode::Sync).name(), "HeMem-PT-Sync");
        assert_eq!(HeMemPt::paper(PtMode::Async).name(), "HeMem-PT-Async");
        assert_eq!(HeMemPt::paper(PtMode::Sync).background_threads(), 1);
        assert_eq!(HeMemPt::paper(PtMode::Async).background_threads(), 2);
    }
}
