//! Linux Nimble tiered memory management (Yan et al., ASPLOS'19) as the
//! paper deploys it (§2.4, Figure 4b).
//!
//! NVM is a distant NUMA node; a single kernel thread periodically scans
//! page tables for accessed bits, then migrates pages — *sequentially, on
//! the same thread*, with 4 parallel copy threads for the data movement.
//! Long-running migrations therefore delay the next scan, statistics go
//! stale, the hot set is overestimated, and at large working sets Nimble
//! spends its time churning (§5.1). Nimble is also blind to read/write
//! asymmetry: accessed bits only, no dirty-bit priority (Table 2).

use hemem_core::backend::{TickOutput, TieredBackend};
use hemem_core::hemem::{run_policy, PageTracker, PolicyConfig, TrackerConfig};
use hemem_core::machine::MachineCore;
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

use crate::scan::{scan_and_classify_with, ScanStreaks};

/// Nimble configuration.
#[derive(Debug, Clone)]
pub struct NimbleConfig {
    /// Pause between the end of one scan+migrate pass and the next.
    pub idle_gap: Ns,
    /// Copy threads for page movement (4 is most efficient per §5).
    pub copy_threads: usize,
    /// Migration byte budget per pass (kernel migration batching limit).
    pub max_migrate_per_pass: u64,
}

impl Default for NimbleConfig {
    fn default() -> Self {
        NimbleConfig {
            idle_gap: Ns::millis(100),
            copy_threads: 4,
            max_migrate_per_pass: 2 << 30,
        }
    }
}

/// Nimble statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NimbleStats {
    /// Scan passes completed.
    pub scans: u64,
    /// Total pages marked hot across scans.
    pub marked_hot: u64,
    /// Total busy time of the kernel thread.
    pub busy: Ns,
}

/// The Nimble backend.
pub struct Nimble {
    cfg: NimbleConfig,
    tracker: PageTracker,
    stats: NimbleStats,
    streaks: ScanStreaks,
}

impl Nimble {
    /// Creates Nimble with the given configuration.
    pub fn new(cfg: NimbleConfig) -> Nimble {
        Nimble {
            tracker: PageTracker::new(TrackerConfig::default()),
            cfg,
            stats: NimbleStats::default(),
            streaks: ScanStreaks::new(),
        }
    }

    /// Default-configured Nimble.
    pub fn paper() -> Nimble {
        Nimble::new(NimbleConfig::default())
    }

    /// Statistics.
    pub fn stats(&self) -> &NimbleStats {
        &self.stats
    }

    fn policy_config(&self) -> PolicyConfig {
        PolicyConfig {
            period: self.cfg.idle_gap,
            // Kernel NUMA management keeps no allocation watermark.
            dram_watermark: 0,
            // Effective budget: Nimble is not rate-capped; bound by the
            // per-pass batching limit instead.
            migration_rate: self.cfg.max_migrate_per_pass as f64 / self.cfg.idle_gap.as_secs_f64(),
            use_dma: false,
            dma_channels: 1,
            copy_threads: self.cfg.copy_threads,
            // The kernel migrates its whole candidate list synchronously.
            max_inflight_pages: self.cfg.max_migrate_per_pass / (2 << 20),
            // Reclaim does not evict pages on the active list; promotions
            // stall (rather than thrash) once nothing in DRAM is inactive.
            swap_allows_hot: false,
        }
    }
}

impl TieredBackend for Nimble {
    fn name(&self) -> &'static str {
        "Nimble"
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        // The kernel manages all anonymous memory; tiny allocations stay
        // in DRAM slab/base pages, big ranges get huge pages.
        len >= 2 << 20
    }

    fn on_mmap(&mut self, m: &mut MachineCore, region: RegionId) {
        let r = m.space.region(region);
        if r.kind() == hemem_vmm::RegionKind::ManagedHeap {
            self.tracker.add_region(region, r.page_count());
        }
    }

    fn on_munmap(&mut self, _m: &mut MachineCore, region: RegionId) {
        self.tracker.remove_region(region);
    }

    fn place(&mut self, m: &mut MachineCore, _page: PageId, _is_write: bool) -> Tier {
        // First-touch NUMA policy: local (DRAM) node until full.
        if m.dram_pool.free_pages() > 0 {
            Tier::Dram
        } else {
            Tier::Nvm
        }
    }

    fn placed(&mut self, _m: &mut MachineCore, page: PageId, tier: Tier) {
        self.tracker.placed(page, tier);
    }

    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput {
        // One sequential pass: scan, classify, then migrate. The next pass
        // cannot start until scan + migration wall time has elapsed on
        // this single kernel thread.
        // Two referenced scans promote (Linux active-list second chance);
        // accessed bits alone would mark everything the workload streams
        // over as hot.
        let scan =
            scan_and_classify_with(m, &mut self.tracker, now, false, Some(&mut self.streaks), 2);
        self.stats.scans += 1;
        self.stats.marked_hot += scan.marked_hot;
        let migrations = run_policy(&self.policy_config(), &mut self.tracker, m, now);
        let bytes: u64 = migrations.len() as u64 * m.cfg.managed_page.bytes();
        let copy_rate = 3.0e9 * self.cfg.copy_threads as f64;
        let migrate_wall = Ns::from_secs_f64(bytes as f64 / copy_rate);
        let busy = scan.scan_time + migrate_wall;
        self.stats.busy += busy;
        m.trace.instant(
            now,
            "nimble_scan",
            "policy",
            &[
                ("marked_hot", scan.marked_hot),
                ("migrations", migrations.len() as u64),
                ("busy_ns", busy.as_nanos()),
            ],
        );
        TickOutput {
            next_wake: Some(now + busy + self.cfg.idle_gap),
            migrations,
            swap_outs: Vec::new(),
            cpu_time: busy,
        }
    }

    fn migration_done(&mut self, _m: &mut MachineCore, page: PageId, dst: Tier) {
        self.tracker.placed(page, dst);
    }

    fn migration_aborted(&mut self, _m: &mut MachineCore, page: PageId, current: Tier) {
        self.tracker.placed(page, current);
    }

    fn background_threads(&self) -> u32 {
        // The kernel thread plus its copy threads.
        1 + self.cfg.copy_threads as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::backend::AccessBatch;
    use hemem_core::machine::MachineConfig;
    use hemem_core::runtime::{Event, Sim};
    use hemem_memdev::GIB;

    fn sim(dram_gib: u64, nvm_gib: u64) -> Sim<Nimble> {
        Sim::new(MachineConfig::small(dram_gib, nvm_gib), Nimble::paper())
    }

    #[test]
    fn first_touch_prefers_dram() {
        let mut s = sim(1, 8);
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        assert_eq!(s.m.space.region(id).dram_pages(), 512);
    }

    #[test]
    fn scan_migrate_cycle_promotes_hot_nvm_pages() {
        let mut s = sim(1, 8);
        s.set_app_threads(1);
        let id = s.mmap(4 * GIB);
        s.populate(id, true);
        // Hammer an NVM-resident slice; scans see accessed bits via the
        // ledger and migrate.
        let batch = AccessBatch::uniform(id, 1600, 1608, 2_000_000, 8, 0.0, 4 * GIB);
        for _ in 0..30 {
            s.submit_batch(0, &batch);
            while let Some((_, ev)) = s.step() {
                if matches!(ev, Event::ThreadReady(_)) {
                    break;
                }
            }
        }
        s.advance(Ns::secs(1));
        assert!(s.backend.stats().scans > 1, "kernel thread scanned");
        assert!(s.m.stats.migrations_done > 0, "pages migrated");
        let in_dram = s.m.space.region(id).dram_pages_in(1600, 1608);
        assert!(in_dram >= 6, "hot slice promoted: {in_dram}/8");
    }

    #[test]
    fn sequential_thread_delays_next_scan_by_migration_time() {
        // Short idle gap: an idle Nimble scans ~tens of times in the
        // window; migration work on the same thread must eat most passes.
        // Both sims receive fresh accessed-bit evidence before every scan
        // (the referenced-twice rule needs consecutive hits); the busy sim's
        // evidence points at NVM pages (migration work), the idle sim's at
        // already-DRAM pages (nothing to do).
        let cfg = NimbleConfig {
            idle_gap: Ns::millis(10),
            ..NimbleConfig::default()
        };
        let mut busy = Sim::new(MachineConfig::small(1, 8), Nimble::new(cfg.clone()));
        let mut idle = Sim::new(MachineConfig::small(1, 8), Nimble::new(cfg));
        for sim in [&mut busy, &mut idle] {
            let id = sim.mmap(2 * GIB);
            sim.populate(id, true);
            sim.advance(Ns::millis(400));
        }
        let busy_id = busy.m.space.regions().next().expect("region").id();
        let idle_id = idle.m.space.regions().next().expect("region").id();
        let s0 = busy.backend.stats().scans;
        let i0 = idle.backend.stats().scans;
        for _ in 0..100 {
            busy.m
                .space
                .region_mut(busy_id)
                .ledger
                .add(512, 1024, 1e9, 0.0);
            idle.m
                .space
                .region_mut(idle_id)
                .ledger
                .add(0, 512, 1e9, 0.0);
            busy.advance(Ns::millis(10));
            idle.advance(Ns::millis(10));
        }
        let busy_scans = busy.backend.stats().scans - s0;
        let idle_scans = idle.backend.stats().scans - i0;
        assert!(busy.m.stats.migrations_started > 0, "busy sim migrated");
        assert!(
            busy_scans + 3 <= idle_scans,
            "migration starves scanning: busy {busy_scans} vs idle {idle_scans}"
        );
    }

    #[test]
    fn blind_to_write_skew() {
        let mut s = sim(1, 8);
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.m.space.region_mut(id).ledger.add(600, 610, 0.0, 1e6);
        s.advance(Ns::millis(300));
        // Pages were marked hot, but never write-heavy.
        assert!(!s.backend.tracker.is_write_heavy(PageId {
            region: id,
            index: 605
        }));
    }

    #[test]
    fn background_thread_count() {
        assert_eq!(Nimble::paper().background_threads(), 5);
    }
}
