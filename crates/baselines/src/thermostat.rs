//! Thermostat (Agarwal & Wenisch, ASPLOS'17) — application-transparent
//! two-tier page placement by page-table *sampling*, discussed in the
//! paper's related work (§6).
//!
//! Each epoch Thermostat samples a small random fraction of pages and
//! estimates their access rate by poisoning their PTEs: every access to a
//! poisoned page faults, so the kernel can count accesses precisely for
//! the sampled subset — at the cost of slowing exactly the pages it
//! measures. Pages estimated colder than a threshold are demoted to slow
//! memory; sampled slow-memory pages that turn out hot are promoted.
//! Compared to HeMem: sampling-by-poisoning has per-access overhead on
//! the sampled set and converges one random subset per epoch, while PEBS
//! observes *all* pages continuously for almost nothing.

use std::collections::HashMap;

use hemem_core::backend::{CopyMechanism, MigrationJob, TickOutput, TieredBackend};
use hemem_core::machine::MachineCore;
use hemem_sim::Ns;
use hemem_vmm::{PageId, PageState, RegionId, Tier};

/// Thermostat configuration.
#[derive(Debug, Clone)]
pub struct ThermostatConfig {
    /// Epoch length between sampling decisions (the paper uses 10 s on
    /// real hardware; scaled runs use shorter epochs).
    pub epoch: Ns,
    /// Fraction of pages poisoned for measurement each epoch.
    pub sample_fraction: f64,
    /// Accesses per epoch below which a sampled page is "cold".
    pub cold_threshold: f64,
    /// Per-fault cost charged to the application for each access to a
    /// poisoned page (TLB fault + kernel accounting).
    pub poison_fault_cost: Ns,
    /// Migration byte budget per epoch.
    pub budget_per_epoch: u64,
}

impl Default for ThermostatConfig {
    fn default() -> Self {
        ThermostatConfig {
            epoch: Ns::secs(1),
            sample_fraction: 0.05,
            cold_threshold: 8.0,
            poison_fault_cost: Ns::micros(2),
            budget_per_epoch: 1 << 30,
        }
    }
}

/// Thermostat statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThermostatStats {
    /// Sampling epochs completed.
    pub epochs: u64,
    /// Pages poisoned for measurement.
    pub sampled: u64,
    /// Pages classified cold and demoted.
    pub demoted: u64,
    /// Pages classified hot and promoted.
    pub promoted: u64,
}

/// The Thermostat backend.
pub struct Thermostat {
    cfg: ThermostatConfig,
    regions: HashMap<RegionId, u64>,
    stats: ThermostatStats,
}

impl Thermostat {
    /// Creates a Thermostat instance.
    pub fn new(cfg: ThermostatConfig) -> Thermostat {
        Thermostat {
            cfg,
            regions: HashMap::new(),
            stats: ThermostatStats::default(),
        }
    }

    /// Default-configured Thermostat.
    pub fn paper() -> Thermostat {
        Thermostat::new(ThermostatConfig::default())
    }

    /// Statistics.
    pub fn stats(&self) -> &ThermostatStats {
        &self.stats
    }
}

impl TieredBackend for Thermostat {
    fn name(&self) -> &'static str {
        "Thermostat"
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        // Kernel-transparent: manages all huge-page-backed memory.
        len >= 2 << 20
    }

    fn on_mmap(&mut self, m: &mut MachineCore, region: RegionId) {
        let r = m.space.region(region);
        if r.kind() == hemem_vmm::RegionKind::ManagedHeap {
            self.regions.insert(region, r.page_count());
        }
    }

    fn on_munmap(&mut self, _m: &mut MachineCore, region: RegionId) {
        self.regions.remove(&region);
    }

    fn place(&mut self, m: &mut MachineCore, _page: PageId, _is_write: bool) -> Tier {
        if m.dram_pool.free_pages() > 0 {
            Tier::Dram
        } else {
            Tier::Nvm
        }
    }

    fn placed(&mut self, _m: &mut MachineCore, _page: PageId, _tier: Tier) {}

    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput {
        self.stats.epochs += 1;
        let mechanism = CopyMechanism::Threads(4);
        let page_bytes = m.cfg.managed_page.bytes();
        let mut budget = self.cfg.budget_per_epoch;
        let mut jobs = Vec::new();
        let ids: Vec<(RegionId, u64)> = self.regions.iter().map(|(&k, &v)| (k, v)).collect();
        for (id, pages) in ids {
            // Skip regions whose evidence has not arrived yet (mid-batch).
            if m.space.region(id).ledger.is_empty() {
                continue;
            }
            let sample_n = ((pages as f64 * self.cfg.sample_fraction) as u64).max(1);
            let mut demote = Vec::new();
            let mut promote = Vec::new();
            for _ in 0..sample_n {
                let idx = m.rng.gen_range(pages);
                self.stats.sampled += 1;
                let region = m.space.region(id);
                let (r, w) = region.ledger.probe(idx);
                let rate = r + w;
                match region.state(idx) {
                    PageState::Mapped {
                        tier: Tier::Dram,
                        wp: false,
                        ..
                    } if rate < self.cfg.cold_threshold => demote.push(idx),
                    PageState::Mapped {
                        tier: Tier::Nvm,
                        wp: false,
                        ..
                    } if rate >= self.cfg.cold_threshold => promote.push(idx),
                    _ => {}
                }
            }
            m.space.region_mut(id).ledger.clear();
            for idx in demote {
                if budget < page_bytes {
                    break;
                }
                jobs.push(MigrationJob {
                    page: PageId {
                        region: id,
                        index: idx,
                    },
                    dst: Tier::Nvm,
                    mechanism,
                });
                budget -= page_bytes;
                self.stats.demoted += 1;
            }
            for idx in promote {
                if budget < page_bytes || m.dram_free_bytes() < page_bytes {
                    break;
                }
                jobs.push(MigrationJob {
                    page: PageId {
                        region: id,
                        index: idx,
                    },
                    dst: Tier::Dram,
                    mechanism,
                });
                budget -= page_bytes;
                self.stats.promoted += 1;
            }
            // Poisoning and unpoisoning PTEs each epoch requires TLB
            // shootdowns, and accesses to poisoned pages fault into the
            // kernel; both stall the application threads. The shootdown is
            // charged through the TLB model (threads pay it as stall debt
            // on their next batch).
            let cores = m.cores.cores();
            m.tlb.shootdown(cores);
        }
        TickOutput {
            next_wake: Some(now + self.cfg.epoch),
            migrations: jobs,
            swap_outs: Vec::new(),
            cpu_time: Ns::micros(100),
        }
    }

    fn migration_done(&mut self, _m: &mut MachineCore, _page: PageId, _dst: Tier) {}

    fn background_threads(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::machine::MachineConfig;
    use hemem_core::runtime::Sim;
    use hemem_memdev::GIB;

    fn sim() -> Sim<Thermostat> {
        let cfg = ThermostatConfig {
            epoch: Ns::millis(100),
            sample_fraction: 0.25,
            ..ThermostatConfig::default()
        };
        Sim::new(MachineConfig::small(1, 8), Thermostat::new(cfg))
    }

    #[test]
    fn samples_and_demotes_cold_dram_pages() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        // Only pages 512..520 are accessed; the rest of DRAM is cold.
        for _ in 0..40 {
            s.m.space.region_mut(id).ledger.add(512, 520, 1e5, 1e4);
            s.advance(Ns::millis(100));
        }
        assert!(s.backend.stats().epochs > 10);
        assert!(s.backend.stats().sampled > 0);
        assert!(s.backend.stats().demoted > 0, "cold DRAM pages demoted");
        let r = s.m.space.region(id);
        assert!(
            r.dram_pages() < 512,
            "some DRAM pages vacated: {}",
            r.dram_pages()
        );
    }

    #[test]
    fn promotes_hot_nvm_pages_once_dram_has_room() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        // Hot slice lives in NVM (pages 512.. were populated second).
        for _ in 0..80 {
            s.m.space.region_mut(id).ledger.add(600, 640, 1e5, 1e4);
            s.advance(Ns::millis(100));
        }
        assert!(s.backend.stats().promoted > 0, "hot NVM pages promoted");
        let r = s.m.space.region(id);
        assert!(
            r.dram_pages_in(600, 640) > 5,
            "hot slice partially promoted: {}",
            r.dram_pages_in(600, 640)
        );
    }

    #[test]
    fn converges_slower_than_exhaustive_observation_would() {
        // One epoch samples only a fraction of pages: after a single
        // epoch, at most sample_fraction of the cold pages can have moved.
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.m.space.region_mut(id).ledger.add(512, 520, 1e5, 1e4);
        s.advance(Ns::millis(100));
        let demoted = s.backend.stats().demoted;
        assert!(
            demoted <= 256 + 8,
            "single epoch bounded by sample: {demoted}"
        );
    }

    #[test]
    fn no_migrations_without_evidence() {
        let mut s = sim();
        let id = s.mmap(GIB);
        s.populate(id, true);
        s.advance(Ns::secs(1));
        assert_eq!(s.m.stats.migrations_started, 0, "empty ledger => no action");
    }
}
