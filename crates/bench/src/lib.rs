//! # hemem-bench
//!
//! Experiment harness regenerating every table and figure in the HeMem
//! paper's evaluation (§5). Each binary (`fig1` … `fig16`, `table1` …
//! `table4`, `ablate_*`) sweeps the same parameters as the corresponding
//! paper result, prints a markdown table, and writes a CSV under
//! `results/`.
//!
//! Experiments default to a 1/8-scale machine (24 GB DRAM + 96 GB NVM,
//! all ratios preserved) so a full sweep completes in seconds; pass
//! `--full` for the paper's 192 GB + 768 GB socket or `--scale N` for any
//! other divisor. EXPERIMENTS.md records measured-vs-paper shapes.

#![warn(missing_docs)]

pub mod bc;

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_core::backend::TieredBackend;
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::Sim;
use hemem_memdev::GIB;
use hemem_sim::LatencyClass;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Machine scale divisor: 1 = the paper's socket.
    pub scale: u64,
    /// Restrict to these backends (empty = the experiment's default set).
    pub backends: Vec<BackendKind>,
    /// Random seed override.
    pub seed: Option<u64>,
    /// Virtual measurement seconds override.
    pub seconds: Option<u64>,
    /// Capture structured trace events (Chrome-trace export); off by
    /// default. Tracing never changes simulation results — see
    /// [`hemem_sim::Tracer`].
    pub trace: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 8,
            backends: Vec::new(),
            seed: None,
            seconds: None,
            trace: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`; exits with usage text on error.
    pub fn parse() -> ExpArgs {
        let mut out = ExpArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => out.scale = 1,
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("missing value for --scale"));
                }
                "--backend" | "--backends" => {
                    let v = args.next().unwrap_or_else(|| usage("missing backend list"));
                    for name in v.split(',') {
                        match BackendKind::parse(name) {
                            Some(k) => out.backends.push(k),
                            None => usage(&format!("unknown backend {name:?}")),
                        }
                    }
                }
                "--seed" => {
                    out.seed = args.next().and_then(|v| v.parse().ok());
                }
                "--seconds" => {
                    out.seconds = args.next().and_then(|v| v.parse().ok());
                }
                "--trace" => out.trace = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument {other:?}")),
            }
        }
        if out.scale == 0 {
            usage("--scale must be >= 1");
        }
        out
    }

    /// The machine for this scale: the paper testbed divided by `scale`.
    ///
    /// The PEBS sample period is multiplied by the scale so the *per-page*
    /// sampling rate matches the paper's: a 1/N machine has N-times fewer
    /// pages under the same access rates, and an unscaled period would
    /// make every page look N-times hotter than on the real testbed.
    pub fn machine(&self) -> MachineConfig {
        let mut mc = MachineConfig::paper_testbed();
        if self.scale > 1 {
            mc = MachineConfig::small((192 / self.scale).max(1), (768 / self.scale).max(1));
            mc.pebs.sample_period *= self.scale;
        }
        if let Some(seed) = self.seed {
            mc.seed = seed;
        }
        mc.trace = self.trace;
        mc
    }

    /// Scales a paper-quoted byte size down by the machine scale.
    pub fn bytes(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.scale).max(64 << 20)
    }

    /// Scales a paper-quoted GiB figure.
    pub fn gib(&self, paper_gib: u64) -> u64 {
        self.bytes(paper_gib * GIB)
    }

    /// Backends to run: the given default set unless `--backend` narrowed
    /// it.
    pub fn backends_or(&self, default: &[BackendKind]) -> Vec<BackendKind> {
        if self.backends.is_empty() {
            default.to_vec()
        } else {
            self.backends.clone()
        }
    }

    /// Builds a simulation with the chosen backend on this machine.
    pub fn sim(&self, kind: BackendKind) -> Sim<AnyBackend> {
        let mc = self.machine();
        let backend = kind.build(&mc);
        Sim::new(mc, backend)
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <experiment> [--full | --scale N] [--backends a,b,..] [--seed S] [--seconds T] [--trace]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Canonical state fingerprint for determinism gates: everything a
/// byte-identical replay must reproduce — machine counters, injected
/// faults, recovery counters, policy attribution, DMA and PEBS stats,
/// pool occupancy, and the always-on latency histograms. Two runs with
/// the same seed and configuration must produce equal strings.
pub fn fingerprint<B: TieredBackend>(sim: &Sim<B>) -> String {
    let mut s = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}/{}|{}/{}/{}",
        sim.m.stats,
        sim.m.chaos.stats(),
        sim.m.recovery,
        sim.m.trace.policy,
        sim.m.dma.stats(),
        sim.m.pebs.stats(),
        sim.m.dram_pool.free_pages(),
        sim.m.dram_pool.allocated_pages(),
        sim.m.nvm_pool.free_pages(),
        sim.m.nvm_pool.allocated_pages(),
        sim.m.nvm_pool.retired_pages(),
    );
    // The tier-3 pool segment only appears on tier-3 machines, keeping
    // two-tier fingerprints byte-identical to their pre-SSD baselines.
    if sim.m.has_ssd() {
        s.push_str(&format!(
            "|ssd:{}/{}/{}",
            sim.m.ssd_pool.free_pages(),
            sim.m.ssd_pool.allocated_pages(),
            sim.m.ssd_pool.retired_pages(),
        ));
    }
    // The failure-domain segment only appears when the config seeds tier
    // health events, keeping fault-free fingerprints byte-identical to
    // their pre-failure-domain baselines.
    if sim.m.cfg.chaos.has_tier_schedule() {
        let h = &sim.m.health;
        s.push_str(&format!(
            "|health:{:?}/{:?}/{}/{}/{}/{}/{}/{}/{:?}",
            h.health,
            h.health_retired,
            h.degrades,
            h.offlines,
            h.readmits,
            h.evacuated_pages,
            h.poisoned_pages,
            h.poison_faults,
            h.tenant_poisoned,
        ));
    }
    // The fleet segment only appears once the backend's slot pool has
    // actually spawned a tenant, keeping solo and statically-colocated
    // fingerprints byte-identical to their pre-fleet baselines. Only the
    // mechanism-independent counters are hashed: the pooled/scratch
    // spawn split is *supposed* to differ between fleetbench's
    // recycled-slot and fresh-slot runs, whose full fingerprints must
    // still compare byte-identical.
    if let Some(fs) = sim.backend.fleet_stats() {
        s.push_str(&format!(
            "|fleet:{}/{}/{}/{}",
            fs.spawns, fs.recycles, fs.scrubbed_pages, fs.generation_sum,
        ));
    }
    // The adaptive-PEBS segment only appears when the controller is
    // configured, keeping fixed-period fingerprints byte-identical to
    // their pre-adaptation baselines.
    if sim.m.cfg.pebs.adaptive.is_some() {
        let a = sim.m.pebs.adapt_stats();
        s.push_str(&format!(
            "|adapt:{}/{}/{}/{}/{}",
            sim.m.pebs.sample_period(),
            a.decisions,
            a.raises,
            a.lowers,
            a.last_window_drop_milli,
        ));
    }
    for class in LatencyClass::ALL {
        let h = sim.m.trace.hist(class);
        // Same reasoning: the major-fault histogram can only fill on a
        // tier-3 machine, so an empty one is omitted rather than printed
        // as a new all-zero segment.
        if class == LatencyClass::MajorFault && h.count() == 0 {
            continue;
        }
        s.push_str(&format!(
            "|{}:{}/{}/{}/{}/{}",
            class.name(),
            h.count(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
        ));
    }
    s
}

/// Runs the structural audit (non-quiescent) and asserts it is silent;
/// `ctx` names the gate in the failure message. Hoisted from the
/// lifecycle benches (churn/fail/nomad/fleet) so "audit silent" means
/// the same check everywhere.
pub fn assert_silent_audit<B: TieredBackend>(sim: &mut Sim<B>, ctx: &str) {
    let violations = sim.run_audit(false);
    assert!(
        violations.is_empty(),
        "{ctx}: audit violations: {violations:?}"
    );
}

/// Asserts tenant `t` retired cleanly after a drain: lifecycle retired,
/// zero frames on every tier, dead to the arbiter with zero quota.
/// Shared by the churn/fleet gates so "drained" means the same thing
/// everywhere a tenant leaves.
pub fn assert_tenant_drained(sim: &Sim<hemem_core::HeMem>, t: hemem_vmm::TenantId) {
    assert!(
        sim.backend.tenant_is_retired(t),
        "{t} not retired after drain"
    );
    let tf = sim.m.space.tenant_frames(t);
    assert_eq!(
        tf.dram_pages + tf.nvm_pages + tf.ssd_pages,
        0,
        "{t} frames leaked past the drain"
    );
    let arb = sim.backend.arbiter().expect("drain gate needs an arbiter");
    assert!(
        !arb.is_live(t) && arb.quota_pages(t) == 0,
        "{t} quota survived retirement"
    );
}

/// Writes `results/<filename>`, logging the path (or a warning) to
/// stderr; `note` names the artifact in the log line. Shared by
/// [`Report::emit`] and binaries exporting extra artifacts (telemetry
/// time series, Chrome traces).
pub fn write_results(filename: &str, contents: &str, note: &str) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!(
            "warning: could not write {}: {e}",
            dir.join(filename).display()
        );
        return;
    }
    let path = dir.join(filename);
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("({note} written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Records one benchmark's wall-clock cost into
/// `BENCH_sim_wallclock.json` at the repository root, alongside the
/// simulated seconds it covered and the resulting simulation rate
/// (simulated seconds per wall second). Entries for other benchmarks
/// already in the file are preserved, so each binary maintains only its
/// own line. The file is a progress artifact — wall-clock numbers vary
/// by host and are *not* part of any determinism gate.
pub fn record_wallclock(bench: &str, wall_seconds: f64, sim_seconds: f64) {
    let path = Path::new("BENCH_sim_wallclock.json");
    let mut entries: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = fs::read_to_string(path) {
        // The file is always written one `"name": {...}` entry per line
        // (see below), so a line scan recovers the other benches' rows.
        for line in existing.lines() {
            let t = line.trim().trim_end_matches(',');
            if let Some(rest) = t.strip_prefix('"') {
                if let Some((name, body)) = rest.split_once("\": ") {
                    if name != bench {
                        entries.push((name.to_string(), body.to_string()));
                    }
                }
            }
        }
    }
    let rate = sim_seconds / wall_seconds.max(1e-9);
    entries.push((
        bench.to_string(),
        format!(
            "{{\"wall_seconds\": {wall_seconds:.3}, \"sim_seconds\": {sim_seconds:.3}, \
             \"sim_seconds_per_wall_second\": {rate:.2}}}"
        ),
    ));
    entries.sort();
    let mut out = String::from("{\n");
    for (i, (name, body)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "  \"{name}\": {body}{comma}");
    }
    out.push_str("}\n");
    match fs::write(path, &out) {
        Ok(()) => eprintln!(
            "(wallclock entry for {bench} written to {})",
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// A result table that renders as markdown and CSV.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report; `name` becomes the CSV filename.
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Report {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders a markdown table.
    pub fn markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {}", self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }

    /// Renders CSV.
    pub fn csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.join(","));
        }
        s
    }

    /// Prints markdown to stdout and writes `results/<name>.csv`.
    pub fn emit(&self) {
        println!("{}", self.markdown());
        write_results(&format!("{}.csv", self.name), &self.csv(), "csv");
    }
}

/// Formats a float compactly for table cells.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_scales_capacities() {
        let a = ExpArgs {
            scale: 8,
            ..ExpArgs::default()
        };
        let mc = a.machine();
        assert_eq!(mc.dram.capacity, 24 * GIB);
        assert_eq!(mc.nvm.capacity, 96 * GIB);
        let full = ExpArgs {
            scale: 1,
            ..ExpArgs::default()
        };
        assert_eq!(full.machine().dram.capacity, 192 * GIB);
    }

    #[test]
    fn bytes_scaling_has_floor() {
        let a = ExpArgs {
            scale: 8,
            ..ExpArgs::default()
        };
        assert_eq!(a.gib(512), 64 * GIB);
        assert_eq!(a.bytes(1 << 20), 64 << 20, "floor applies");
    }

    #[test]
    fn report_renders_markdown_and_csv() {
        let mut r = Report::new("t", "Title", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        let md = r.markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = r.csv();
        assert!(csv.starts_with("a,b\n1,2"));
    }

    #[test]
    fn backends_default_and_override() {
        let a = ExpArgs::default();
        let d = a.backends_or(&[BackendKind::HeMem, BackendKind::MemoryMode]);
        assert_eq!(d.len(), 2);
        let b = ExpArgs {
            backends: vec![BackendKind::Nimble],
            ..ExpArgs::default()
        };
        assert_eq!(b.backends_or(&d), vec![BackendKind::Nimble]);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(0.1234), "0.1234");
        assert_eq!(f3(3.25159), "3.25");
        assert_eq!(f3(123.4), "123");
    }

    #[test]
    fn sim_builds_each_backend() {
        let a = ExpArgs {
            scale: 96,
            ..ExpArgs::default()
        };
        for kind in [
            BackendKind::HeMem,
            BackendKind::MemoryMode,
            BackendKind::Nimble,
        ] {
            let s = a.sim(kind);
            assert!(s.m.cfg.dram.capacity >= GIB);
        }
    }
}
