//! Multi-tenant colocation sweep: a hot + cold GUPS tenant pair runs
//! under each DRAM-arbiter policy, with per-tenant and aggregate
//! throughput in the report (`results/colobench.csv`) and a per-tenant
//! quota/residency time series (`results/colobench_telemetry.csv`).
//!
//! The mix is chosen so arbitration matters: the *hot* tenant (8
//! threads) has a hot set of two-thirds of DRAM — it misses badly on a
//! static half-tier share — while the *cold* tenant (2 threads) fits
//! its whole working set inside the arbiter's quota floor (a sixteenth
//! of the tier for two tenants), so every page of quota above the
//! floor is wasted on it and no reallocation can squeeze it below
//! residency. The greedy-miss-ratio arbiter moves the idle headroom to
//! the hot tenant; static equal shares cannot.
//!
//! Three gates run on every invocation:
//!
//! 1. **Solo byte-identity.** A one-tenant GUPS run under the arbiter
//!    (`HeMem::multi_tenant(cfg, 1, ..)`) must be byte-identical — state
//!    fingerprint, operation stream, and telemetry CSV — to the same run
//!    on the single-process manager (`HeMem::new`). The arbiter must be
//!    a strict no-op for one tenant.
//! 2. **Replay.** The two-tenant mix, run twice with the same seed,
//!    must reproduce identical fingerprints and per-tenant streams.
//! 3. **Colocation pays.** Aggregate hot+cold throughput under
//!    greedy-miss-ratio must be strictly higher than under static equal
//!    shares, and every run must pass the tenant-scoped audit.

use hemem_bench::{f3, fingerprint, record_wallclock, write_results, ExpArgs, Report};
use hemem_core::arbiter::ArbiterPolicy;
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_core::telemetry::{Telemetry, TenantTelemetry};
use hemem_sim::Ns;
use hemem_vmm::RegionKind;
use hemem_workloads::{run_colo_with, ColoConfig, ColoResult, GupsConfig, TenantKind, TenantSpec};

/// One GUPS tenant; `hot_set = 0` means uniform access. The colo loop
/// owns the run window, so the per-driver warmup/duration are unused.
fn gups_tenant(label: &str, working_set: u64, hot_set: u64, threads: u32) -> TenantSpec {
    let mut c = GupsConfig::paper(working_set, hot_set);
    c.threads = threads;
    TenantSpec {
        label: label.to_string(),
        kind: TenantKind::Gups(c),
    }
}

/// The hot + cold pair, sized off the machine's DRAM capacity.
fn hot_cold_mix(dram: u64) -> Vec<TenantSpec> {
    vec![
        gups_tenant("gups_hot", 2 * dram, 2 * dram / 3, 8),
        // Sized below the floor *minus* the cold tenant's watermark
        // share: at exactly the floor, the watermark would demote the
        // tail of its working set and thrash it against the quota cap.
        gups_tenant("gups_cold", dram / 20, 0, 2),
    ]
}

/// The colocation machine. `ExpArgs::machine` multiplies the PEBS
/// sample period by the scale to keep the *per-page* sample rate at the
/// paper's value, but the reallocation experiment needs the classifier
/// to rank a scaled-down hot set within a couple of seconds — divide
/// the period back out so the *absolute* sample rate matches the paper.
fn colo_machine(args: &ExpArgs) -> hemem_core::machine::MachineConfig {
    let mut mc = args.machine();
    mc.pebs.sample_period /= args.scale;
    mc
}

/// Runs `specs` under `policy` for `warmup + seconds`, sampling the
/// per-tenant telemetry, and audits the end state.
fn run_mix(
    args: &ExpArgs,
    policy: ArbiterPolicy,
    specs: Vec<TenantSpec>,
    seconds: u64,
) -> (Sim<HeMem>, ColoResult, TenantTelemetry) {
    let mc = colo_machine(args);
    let hc = HeMemConfig::scaled_for(&mc);
    let n = specs.len();
    let mut sim = Sim::new(mc, HeMem::multi_tenant(hc, n, policy));
    // A colocation run is a few seconds; step quota fast enough that the
    // arbiter reaches its equilibrium well inside the measured window.
    let step = (sim.m.dram_pool.total_pages() / 32).max(1);
    sim.backend.set_arbiter_realloc(Ns::millis(50), step);
    let cfg = ColoConfig {
        tenants: specs,
        warmup: Ns::secs(2),
        duration: Ns::secs(seconds),
    };
    let mut tel = TenantTelemetry::new(Ns::millis(100));
    let res = run_colo_with(&mut sim, &cfg, |s| {
        tel.maybe_sample(s);
    });
    let violations = sim.run_audit(false);
    assert!(
        violations.is_empty(),
        "{} run must pass the tenant-scoped audit: {violations:?}",
        policy.label()
    );
    (sim, res, tel)
}

/// Gate 1: the arbiter is a no-op for a single tenant.
fn solo_identity_gate(args: &ExpArgs, seconds: u64) {
    let dram = args.machine().dram.capacity;
    let spec = || vec![gups_tenant("gups_solo", 2 * dram, dram / 3, 8)];
    let run = |multi: bool| -> (String, u64, String) {
        let mc = colo_machine(args);
        let hc = HeMemConfig::scaled_for(&mc);
        let backend = if multi {
            HeMem::multi_tenant(hc, 1, ArbiterPolicy::GreedyMissRatio)
        } else {
            HeMem::new(hc)
        };
        let mut sim = Sim::new(mc, backend);
        let cfg = ColoConfig {
            tenants: spec(),
            warmup: Ns::secs(1),
            duration: Ns::secs(seconds),
        };
        let mut tel: Option<Telemetry> = None;
        let res = run_colo_with(&mut sim, &cfg, |s| {
            let t = tel.get_or_insert_with(|| {
                let id =
                    s.m.space
                        .regions()
                        .find(|r| r.kind() == RegionKind::ManagedHeap)
                        .expect("gups region mapped")
                        .id();
                Telemetry::new(id, Ns::millis(100))
            });
            t.maybe_sample(s);
        });
        let tel_csv = tel.map(|t| t.csv()).unwrap_or_default();
        (fingerprint(&sim), res.fingerprint, tel_csv)
    };
    let (fp_solo, stream_solo, tel_solo) = run(false);
    let (fp_arb, stream_arb, tel_arb) = run(true);
    assert_eq!(
        fp_solo, fp_arb,
        "one tenant under the arbiter must be byte-identical to the single-process manager"
    );
    assert_eq!(stream_solo, stream_arb, "identical operation streams");
    assert_eq!(tel_solo, tel_arb, "identical telemetry CSVs");
    println!("solo-identity: OK — 1-tenant arbiter run matches the single-process path");
    println!("  {fp_solo}");
}

fn main() {
    let args = ExpArgs::parse();
    let seconds = args.seconds.unwrap_or(8);
    let dram = args.machine().dram.capacity;
    let wall = std::time::Instant::now();
    // Simulated time covered by the run, accumulated per gate/sweep
    // (each run pays 1 s of warmup on top of its measured window).
    let mut sim_secs = 0.0f64;

    solo_identity_gate(&args, seconds.min(3));
    sim_secs += 2.0 * (1 + seconds.min(3)) as f64;

    // Gate 2: two-tenant replay determinism (short static-share run).
    let gate_secs = seconds.min(3);
    let (sa, ra, _) = run_mix(
        &args,
        ArbiterPolicy::StaticShares,
        hot_cold_mix(dram),
        gate_secs,
    );
    let (sb, rb, _) = run_mix(
        &args,
        ArbiterPolicy::StaticShares,
        hot_cold_mix(dram),
        gate_secs,
    );
    assert_eq!(
        fingerprint(&sa),
        fingerprint(&sb),
        "same seed + same mix must reproduce identical machine state"
    );
    assert_eq!(
        ra.fingerprint, rb.fingerprint,
        "identical submission streams"
    );
    sim_secs += 2.0 * (2 + gate_secs) as f64;
    println!("replay: OK — two colocated runs are byte-identical");

    // The sweep: hot + cold under every arbiter policy.
    let mut rep = Report::new(
        "colobench",
        "Hot + cold GUPS colocation under each DRAM-arbiter policy",
        &[
            "policy",
            "tenant",
            "workload",
            "ops",
            "ops_per_sec",
            "dram_pages",
            "quota_pages",
            "reallocations",
        ],
    );
    let mut aggregate = Vec::new();
    for policy in ArbiterPolicy::ALL {
        let (sim, res, tel) = run_mix(&args, policy, hot_cold_mix(dram), seconds);
        sim_secs += (2 + seconds) as f64;
        let arb = sim
            .backend
            .arbiter()
            .expect("multi-tenant run has an arbiter");
        for t in &res.per_tenant {
            let tf = sim.m.space.tenant_frames(t.tenant);
            rep.row(&[
                policy.label().to_string(),
                t.tenant.to_string(),
                t.label.clone(),
                t.ops.to_string(),
                f3(t.ops_per_sec),
                tf.dram_pages.to_string(),
                arb.quota_pages(t.tenant).to_string(),
                arb.reallocations().to_string(),
            ]);
        }
        let total_ops = res.aggregate_ops();
        rep.row(&[
            policy.label().to_string(),
            "all".to_string(),
            "aggregate".to_string(),
            total_ops.to_string(),
            f3(res.per_tenant.iter().map(|t| t.ops_per_sec).sum()),
            sim.m.dram_pool.allocated_pages().to_string(),
            arb.total_pages().to_string(),
            arb.reallocations().to_string(),
        ]);
        aggregate.push((policy, total_ops));
        if policy == ArbiterPolicy::GreedyMissRatio {
            write_results(
                "colobench_telemetry.csv",
                &tel.csv(),
                "per-tenant telemetry csv",
            );
        }
    }
    rep.emit();

    // Gate 3: greedy arbitration beats static equal shares on this mix.
    let static_ops = aggregate
        .iter()
        .find(|(p, _)| *p == ArbiterPolicy::StaticShares)
        .map(|(_, o)| *o)
        .expect("static swept");
    let greedy_ops = aggregate
        .iter()
        .find(|(p, _)| *p == ArbiterPolicy::GreedyMissRatio)
        .map(|(_, o)| *o)
        .expect("greedy swept");
    assert!(
        greedy_ops > static_ops,
        "greedy-miss-ratio ({greedy_ops} ops) must beat static equal shares ({static_ops} ops)"
    );
    println!(
        "colocation: OK — greedy {greedy_ops} ops vs static {static_ops} ops (+{:.1}%)",
        (greedy_ops as f64 / static_ops as f64 - 1.0) * 100.0
    );

    record_wallclock("colobench", wall.elapsed().as_secs_f64(), sim_secs);
}
