//! Figure 9: instantaneous GUPS over time; after 150 s (scaled: 40% of
//! the run) 4 GB of the 16 GB hot set shifts.
//!
//! Paper shape: HeMem and MM dip at the shift and recover within ~20 s;
//! HeMem-PT-Async never tracks the hot set and stays at ~54% of HeMem.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{Gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::HeMem,
        BackendKind::MemoryMode,
        BackendKind::PtAsync,
    ]);
    let secs = args.seconds.unwrap_or(30);
    let mut series = Vec::new();
    for &kind in &backends {
        let mut sim = args.sim(kind);
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
        cfg.warmup = Ns::secs(25);
        cfg.duration = Ns::secs(secs);
        cfg.rate_window = Ns::secs(1);
        let shift = args.gib(4);
        let mut g = Gups::setup(&mut sim, cfg);
        let at = Ns::secs(secs * 2 / 5);
        let res = g.run_with_events(&mut sim, &[(1, at)], |g, _| g.shift_hot_set(shift));
        series.push((kind.label(), res.timeseries));
    }
    let mut headers = vec!["t (s)".to_string()];
    headers.extend(series.iter().map(|(l, _)| format!("{l} (GUPS)")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new(
        "fig9",
        "Figure 9: instantaneous GUPS (hot-set shift at 40%)",
        &hdr_refs,
    );
    let n = series.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    for i in 0..n {
        let mut cells = vec![format!("{:.1}", series[0].1[i].0.as_secs_f64())];
        for (_, s) in &series {
            cells.push(format!("{:.4}", s[i].1 / 1e9));
        }
        rep.row(&cells);
    }
    rep.emit();
}
