//! Figure 6: GUPS with a 512 GB working set and hot sets from 1-256 GB
//! (90% of operations hit the hot set).
//!
//! Paper shape: HeMem keeps the hot set in DRAM and leads while it fits;
//! MM decays as the hot set approaches DRAM capacity (HeMem up to 2x
//! better); Nimble reaches only ~25% of MM; all converge once the hot set
//! exceeds DRAM.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::MemoryMode,
        BackendKind::Nimble,
        BackendKind::HeMem,
    ]);
    let paper_hot = [1u64, 4, 16, 64, 128, 192, 256];
    let mut headers = vec!["hot set (paper GiB)".to_string()];
    headers.extend(backends.iter().map(|b| format!("{} (GUPS)", b.label())));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new(
        "fig6",
        "Figure 6: GUPS vs hot set size (512 GB WSS)",
        &hdr_refs,
    );
    for &hot in &paper_hot {
        let mut cells = vec![hot.to_string()];
        for &kind in &backends {
            let mut sim = args.sim(kind);
            let mut cfg = GupsConfig::paper(args.gib(512), args.gib(hot));
            // Classification time grows with hot-set page count (samples
            // per page shrink); warm up proportionally, as the paper's
            // multi-minute runs do implicitly.
            cfg.warmup = Ns::secs(60 * hot.div_ceil(32).clamp(1, 10));
            cfg.duration = Ns::secs(args.seconds.unwrap_or(6));
            let r = run_gups(&mut sim, cfg);
            cells.push(format!("{:.4}", r.gups));
        }
        rep.row(&cells);
    }
    rep.emit();
}
