//! Extension experiment (§3.4 "Swapping"): NVMe swap as a third tier.
//!
//! A working set larger than DRAM + NVM combined is impossible for the
//! two-tier configurations; with a swap device HeMem pages the coldest
//! NVM pages to disk and keeps running. The sweep shows throughput
//! degrading gracefully as the working set outgrows each tier.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_memdev::GIB;
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let mc_probe = args.machine();
    let dram = mc_probe.dram.capacity / GIB;
    let nvm = mc_probe.nvm.capacity / GIB;
    let mut rep = Report::new(
        "ablate_swap",
        &format!("Three-tier swap (DRAM {dram} GiB + NVM {nvm} GiB + NVMe swap)"),
        &[
            "WSS (GiB)",
            "GUPS",
            "swap-outs",
            "swap-ins",
            "pages on disk",
        ],
    );
    // Sweep across both capacity cliffs: DRAM and DRAM+NVM.
    let sweep = [
        dram / 2,
        dram,
        dram + nvm / 2,
        dram + nvm,
        (dram + nvm) * 5 / 4,
    ];
    for ws in sweep {
        let mc = args.machine().with_swap(4 * (dram + nvm) * GIB);
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.swap_watermark = (nvm * GIB / 64).max(64 << 20);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let mut cfg = GupsConfig::paper(ws * GIB, (dram * GIB) / 4);
        cfg.warmup = Ns::secs(30);
        cfg.duration = Ns::secs(args.seconds.unwrap_or(8));
        let r = run_gups(&mut sim, cfg);
        let swapped: u64 = sim.m.space.regions().map(|reg| reg.swapped_pages()).sum();
        rep.row(&[
            ws.to_string(),
            format!("{:.4}", r.gups),
            sim.m.stats.swap_outs.to_string(),
            sim.m.stats.swap_ins.to_string(),
            swapped.to_string(),
        ]);
    }
    rep.emit();
}
