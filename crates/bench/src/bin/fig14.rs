//! Figure 14: betweenness centrality per-iteration runtime, graph fits in
//! DRAM (paper: 2^28 vertices on 192 GB).
//!
//! Paper shape: HeMem keeps everything in DRAM and beats MM by ~93% on
//! average (MM pays conflict misses + NVM's small-access penalty);
//! Nimble sits between (up to 47% over HeMem, still 32% better than MM).

use hemem_baselines::BackendKind;
use hemem_bench::{bc::run_bc, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    // Scale 28 at full machine size; shrink the graph with the machine.
    // Keep the graph *inside* the scaled DRAM: shrink at least as
    // fast as the machine.
    let scale = 28 - (args.scale as f64).log2().ceil() as u32;
    run_bc(
        &args,
        scale,
        "fig14",
        "Figure 14: BC, graph fits in DRAM",
        &[
            BackendKind::DramOnly,
            BackendKind::HeMem,
            BackendKind::Nimble,
            BackendKind::MemoryMode,
        ],
    );
}
