//! Table 1: main memory technology comparison — the device model's
//! latency/bandwidth/capacity constants plus measured peak throughputs.

use hemem_bench::{f3, ExpArgs, Report};
use hemem_memdev::{DeviceConfig, MemOp, Pattern, GIB};
use hemem_workloads::{run_stream, StreamConfig};

fn main() {
    let _args = ExpArgs::parse();
    let dram = DeviceConfig::ddr4_dram(192 * GIB);
    let nvm = DeviceConfig::optane_dc(768 * GIB);
    let mut rep = Report::new(
        "table1",
        "Table 1: main memory technology comparison",
        &[
            "Memory",
            "R/W latency (ns)",
            "measured R/W GB/s (seq, 24 thr)",
            "capacity",
        ],
    );
    for (dev, cap) in [(&dram, "1x"), (&nvm, "8x (per module)")] {
        let r = run_stream(&StreamConfig::paper_default(
            dev.clone(),
            24,
            MemOp::Read,
            Pattern::Sequential,
        ))
        .gb_per_sec();
        let w = run_stream(&StreamConfig::paper_default(
            dev.clone(),
            24,
            MemOp::Write,
            Pattern::Sequential,
        ))
        .gb_per_sec();
        rep.row(&[
            dev.name.clone(),
            format!(
                "{} / {}",
                dev.read_latency.as_nanos(),
                dev.write_latency.as_nanos()
            ),
            format!("{} / {}", f3(r), f3(w)),
            cap.to_string(),
        ]);
    }
    rep.emit();
}
