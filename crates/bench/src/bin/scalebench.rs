//! Footprint-scaling gate: multi-grained region tracking must keep the
//! policy pass sublinear in the tenant's footprint, and the self-tuning
//! PEBS controller must hold the sample-drop fraction where a fixed
//! period cannot — without either feature perturbing a single byte when
//! off.
//!
//! Gates:
//!
//! (a) **Sublinear policy pass** — the same drifting-hot-set churn runs
//!     at 2/4/8/16 GiB footprints on a fixed machine, once with the flat
//!     per-page comparator (`RegionConfig::flat_baseline`: one span per
//!     page, so region maintenance degenerates to a full per-page scan)
//!     and once with multi-grained spans (`RegionConfig::multi_grain`).
//!     Across the 8x footprint sweep the flat policy-pass cost must grow
//!     ~linearly (>= 6x) while the multi-grain cost grows <= 4x and ends
//!     at least 2x cheaper than flat at the largest footprint.
//! (b) **Drop fraction held** — at the largest footprint, a fixed
//!     aggressive sample period must lose more than the 10% drop budget,
//!     while the adaptive controller started from the *same* period
//!     raises itself out of the overload and lands its last decision
//!     window inside the budget, with a lower cumulative drop fraction.
//! (c) **Regions-off byte-identity** — with regions and adaptation off
//!     (the defaults), the tierbench gate (a) configuration must
//!     reproduce the committed pre-PR baselines byte for byte
//!     (`results/tierbench_2tier_baseline.txt` /
//!     `results/tierbench_2tier_telemetry.csv`).
//! (d) **Kill-replay determinism** — the multi-grain + adaptive churn
//!     with a seeded manager kill landing mid-split/merge replays
//!     byte-identically (region and controller counters included) and
//!     the post-recovery audit is silent.
//!
//! `results/scalebench.csv` records the sweep: per footprint, the flat
//! and multi-grain policy-pass costs and the span/split/merge activity
//! behind them.

use std::path::Path;

use hemem_bench::{f3, fingerprint, record_wallclock, ExpArgs, Report};
use hemem_core::backend::AccessBatch;
use hemem_core::hemem::{HeMem, HeMemConfig, RegionConfig, RegionStats};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::telemetry::Telemetry;
use hemem_memdev::GIB;
use hemem_pebs::AdaptiveConfig;
use hemem_sim::Ns;
use hemem_vmm::RegionId;
use hemem_workloads::{Gups, GupsConfig};

/// Footprints swept by gate (a), in GiB. The machine is fixed and every
/// point oversubscribes its 1 GiB of DRAM, so the sweep scales only the
/// tracked address space while the migration churn stays comparable.
const FOOTPRINTS_GIB: [u64; 4] = [2, 4, 8, 16];

/// Pages per hot span, batches per round, and accesses per batch: the
/// same drifting two-span churn at every footprint, so the per-sample
/// work is constant and only the tracking structures scale.
const SPAN_PAGES: u64 = 64;
const BATCH_OPS: u64 = 400_000;
const ROUNDS: u64 = 40;
const WARM_MS: u64 = 1_000;

/// The aggressive fixed period for gate (b); the adaptive run starts
/// from the same period and must climb away from it. At the sweep's
/// access rates the PEBS thread only keeps up above a period of a few
/// hundred events, so this overloads the drain several times over.
const HOT_PERIOD: u64 = 4;

/// The fixed machine: 1 GiB DRAM + 24 GiB NVM holds the largest
/// footprint with room to spare, so every sweep point is the same
/// hardware under more tracked pages.
fn scale_machine() -> MachineConfig {
    let mut mc = MachineConfig::small(1, 24);
    mc.seed = 0x0053_4341_4C45; // "SCALE"

    // Keep the sweep's sampling pressure moderate: the paper's period is
    // tuned for a full socket and would under-sample this machine. Gate
    // (b) overrides this with its own fixed/adaptive operating points.
    mc.pebs.sample_period = 2_000;
    mc
}

struct RunOutcome {
    sim: Sim<HeMem>,
    accesses: u64,
    sim_ns: u64,
}

/// One measured churn run at `footprint_gib` with the given region
/// config. Two `SPAN_PAGES` hot spans drift across the whole footprint
/// (a full tour over the run), so hot splits chase the heat while the
/// cold majority is free to merge back.
fn region_run(mc: MachineConfig, regions: RegionConfig, footprint_gib: u64) -> RunOutcome {
    let mut hc = HeMemConfig::scaled_for(&mc);
    hc.tracker.regions = regions;
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let bytes = footprint_gib * GIB;
    let region = sim.mmap(bytes);
    sim.populate(region, true);
    // Populate time scales with footprint, so warm up *relative* to its
    // end — an absolute `run_until` would land inside populate for the
    // larger sweep points and skip the warmup entirely.
    sim.advance(Ns::millis(WARM_MS));
    let start = sim.now();
    let pages = bytes / sim.m.cfg.managed_page.bytes();
    let span = pages - SPAN_PAGES;
    let stride = (pages / ROUNDS).max(1);
    let mut accesses = 0u64;
    for round in 0..ROUNDS {
        for base in [
            (round * stride) % span,
            ((round * stride) + span / 2) % span,
        ] {
            if !sim.m.space.regions().any(|r| r.id() == region) {
                sim.advance(Ns::millis(25));
                continue;
            }
            let hi = (base + SPAN_PAGES).min(pages);
            let batch = AccessBatch::uniform(region, base, hi, BATCH_OPS, 8, 0.1, bytes);
            sim.submit_batch(0, &batch);
            accesses += BATCH_OPS;
            loop {
                match sim.step() {
                    Some((_, Event::ThreadReady(_))) | None => break,
                    Some(_) => {}
                }
            }
            sim.advance(Ns::millis(25));
        }
    }
    sim.advance(Ns::secs(1));
    let sim_ns = sim.now().saturating_sub(start).as_nanos();
    RunOutcome {
        sim,
        accesses,
        sim_ns,
    }
}

fn region_stats(out: &RunOutcome) -> RegionStats {
    out.sim
        .backend
        .region_stats()
        .expect("region tracking enabled for sweep runs")
}

/// The gate (d) run: multi-grain regions plus the adaptive controller,
/// with a seeded manager kill landing mid-churn — after warmup, while
/// splits and merges are in full swing.
fn killed_adaptive_fingerprint() -> (String, usize) {
    let mut mc = scale_machine();
    mc.pebs.sample_period = HOT_PERIOD;
    mc.pebs.adaptive = Some(AdaptiveConfig {
        min_period: HOT_PERIOD,
        ..AdaptiveConfig::default()
    });
    mc.chaos.manager_kill_at = vec![Ns::millis(WARM_MS + 300)];
    let mut out = region_run(mc, RegionConfig::multi_grain(), 2);
    let violations = out.sim.run_audit(false);
    let fp = format!(
        "{}|{:?}|{:?}|{:?}",
        fingerprint(&out.sim),
        out.sim.m.recovery,
        region_stats(&out),
        out.sim.m.pebs.adapt_stats(),
    );
    (fp, violations.len())
}

/// Replays the frozen tierbench gate (a) runs with the (default)
/// regions-off, adaptation-off config and checks them against the
/// committed baselines. Byte drift here means one of the new features is
/// not a no-op when off.
fn gate_regions_off_identity() {
    let args = ExpArgs {
        scale: 96,
        ..ExpArgs::default()
    };
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(2);
    cfg.duration = Ns::secs(2);
    let mc = args.machine();
    assert!(mc.pebs.adaptive.is_none(), "adaptation must default off");
    assert!(
        !HeMemConfig::scaled_for(&mc).tracker.regions.enabled,
        "regions must default off"
    );
    let backend = hemem_baselines::BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let _ = gups.run(&mut sim);
    let fp = format!("{}\n", fingerprint(&sim));
    compare_baseline("tierbench_2tier_baseline.txt", &fp, "2-tier fingerprint");

    let mc = args.machine();
    let backend = hemem_baselines::BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let id: RegionId = sim.mmap(2 * sim.m.cfg.dram.capacity);
    sim.populate(id, true);
    let mut t = Telemetry::new(id, Ns::millis(50));
    for _ in 0..30 {
        t.maybe_sample(&sim);
        sim.advance(Ns::millis(50));
    }
    t.maybe_sample(&sim);
    compare_baseline(
        "tierbench_2tier_telemetry.csv",
        &t.csv(),
        "2-tier telemetry",
    );
}

/// Compares `contents` against the committed tierbench baseline —
/// scalebench never seeds these files; they are the pre-PR capture and
/// must match exactly.
fn compare_baseline(filename: &str, contents: &str, what: &str) {
    let path = Path::new("results").join(filename);
    let baseline = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("gate (c) needs committed baseline {}: {e}", path.display()));
    assert_eq!(
        baseline,
        contents,
        "gate (c) failed: regions-off {what} drifted from committed baseline {}",
        path.display()
    );
    println!(
        "gate (c): regions-off {what} byte-identical to {}",
        path.display()
    );
}

fn main() {
    let _args = ExpArgs::parse(); // accepted for CLI uniformity; gates are fixed
    let wall = std::time::Instant::now();
    let mut sim_secs = 0.0f64;

    // Gate (a): flat vs multi-grain policy-pass cost across the sweep.
    let mut rep = Report::new(
        "scalebench",
        "Footprint scaling: flat per-page scans vs multi-grained regions",
        &[
            "footprint GiB",
            "pages",
            "flat cost/period",
            "multi cost/period",
            "multi spans",
            "splits",
            "merges",
            "accesses/s (multi)",
        ],
    );
    let mut flat_costs = Vec::new();
    let mut multi_costs = Vec::new();
    for gib in FOOTPRINTS_GIB {
        let flat = region_run(scale_machine(), RegionConfig::flat_baseline(), gib);
        let multi = region_run(scale_machine(), RegionConfig::multi_grain(), gib);
        sim_secs += (flat.sim_ns + multi.sim_ns) as f64 / 1e9 + 2.0 * (WARM_MS as f64 / 1e3);
        let (fs, ms) = (region_stats(&flat), region_stats(&multi));
        let (fc, mc_) = (fs.policy_cost_per_period(), ms.policy_cost_per_period());
        flat_costs.push(fc);
        multi_costs.push(mc_);
        let pages = gib * GIB / flat.sim.m.cfg.managed_page.bytes();
        let rate = multi.accesses as f64 / (multi.sim_ns as f64 / 1e9).max(1e-9);
        rep.row(&[
            gib.to_string(),
            pages.to_string(),
            f3(fc),
            f3(mc_),
            ms.spans.to_string(),
            ms.splits.to_string(),
            ms.merges.to_string(),
            f3(rate),
        ]);
    }
    rep.emit();
    let sweep = (FOOTPRINTS_GIB[FOOTPRINTS_GIB.len() - 1] / FOOTPRINTS_GIB[0]) as f64;
    let flat_growth = flat_costs[flat_costs.len() - 1] / flat_costs[0].max(1e-9);
    let multi_growth = multi_costs[multi_costs.len() - 1] / multi_costs[0].max(1e-9);
    assert!(
        flat_growth >= sweep * 0.75,
        "gate (a) failed: flat comparator is not linear in footprint \
         (grew {flat_growth:.2}x over a {sweep:.0}x sweep)"
    );
    assert!(
        multi_growth <= sweep / 2.0,
        "gate (a) failed: multi-grain policy cost grew {multi_growth:.2}x \
         over a {sweep:.0}x sweep — not sublinear"
    );
    let (flat_last, multi_last) = (
        flat_costs[flat_costs.len() - 1],
        multi_costs[multi_costs.len() - 1],
    );
    assert!(
        multi_last * 2.0 < flat_last,
        "gate (a) failed: multi-grain cost {multi_last:.1} not 2x under flat {flat_last:.1} \
         at the largest footprint"
    );
    println!(
        "gate (a): policy cost/period grew {multi_growth:.2}x (multi-grain) vs \
         {flat_growth:.2}x (flat) over a {sweep:.0}x footprint sweep; \
         {multi_last:.1} vs {flat_last:.1} at {} GiB",
        FOOTPRINTS_GIB[FOOTPRINTS_GIB.len() - 1]
    );

    // Gate (b): fixed aggressive period vs the adaptive controller at
    // the largest footprint.
    let top = FOOTPRINTS_GIB[FOOTPRINTS_GIB.len() - 1];
    let mut fixed_mc = scale_machine();
    fixed_mc.pebs.sample_period = HOT_PERIOD;
    fixed_mc.pebs.adaptive = None;
    let mut adapt_mc = scale_machine();
    adapt_mc.pebs.sample_period = HOT_PERIOD;
    adapt_mc.pebs.adaptive = Some(AdaptiveConfig {
        min_period: HOT_PERIOD,
        ..AdaptiveConfig::default()
    });
    let target = AdaptiveConfig::default().target_drop_milli;
    let fixed = region_run(fixed_mc, RegionConfig::multi_grain(), top);
    let adapt = region_run(adapt_mc, RegionConfig::multi_grain(), top);
    sim_secs += (fixed.sim_ns + adapt.sim_ns) as f64 / 1e9 + 2.0 * (WARM_MS as f64 / 1e3);
    let drop_milli = |o: &RunOutcome| {
        let p = o.sim.m.pebs.stats();
        p.dropped * 1_000 / p.generated.max(1)
    };
    let (fixed_drop, adapt_drop) = (drop_milli(&fixed), drop_milli(&adapt));
    let a = adapt.sim.m.pebs.adapt_stats();
    assert!(
        fixed_drop > target,
        "gate (b) failed: fixed period {HOT_PERIOD} only dropped {fixed_drop} milli — \
         no overload to adapt away from"
    );
    assert!(
        a.raises > 0,
        "gate (b) failed: controller never raised the period under overload"
    );
    assert!(
        a.last_window_drop_milli <= target,
        "gate (b) failed: adaptive run's last window dropped {} milli, over the {target} budget",
        a.last_window_drop_milli
    );
    assert!(
        adapt_drop < fixed_drop,
        "gate (b) failed: adaptive cumulative drop {adapt_drop} milli not below fixed {fixed_drop}"
    );
    println!(
        "gate (b): fixed period {HOT_PERIOD} dropped {fixed_drop} milli at {top} GiB; \
         adaptive ended at period {} ({} raises, {} lowers), last window {} milli, \
         cumulative {adapt_drop} milli",
        adapt.sim.m.pebs.sample_period(),
        a.raises,
        a.lowers,
        a.last_window_drop_milli
    );

    // Gate (c): both features off are byte-invisible.
    gate_regions_off_identity();
    sim_secs += 4.0 + 1.5;

    // Gate (d): the seeded kill replays byte-identically, audit silent.
    let (fp1, v1) = killed_adaptive_fingerprint();
    let (fp2, v2) = killed_adaptive_fingerprint();
    assert_eq!(
        fp1, fp2,
        "gate (d) failed: seeded regions+adaptive kill-run replay diverged"
    );
    assert_eq!(
        v1 + v2,
        0,
        "gate (d) failed: kill recovery left audit violations"
    );
    println!("gate (d): manager-kill replay byte-identical, audit silent");
    sim_secs += 2.0 * 3.0;

    record_wallclock("scalebench", wall.elapsed().as_secs_f64(), sim_secs);
}
