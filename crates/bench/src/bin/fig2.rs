//! Figure 2: DRAM and Optane throughput at 16 threads, varying access
//! size (64 B - 16 KB), sequential and random, reads and writes.

use hemem_bench::{f3, ExpArgs, Report};
use hemem_memdev::{DeviceConfig, MemOp, Pattern, GIB};
use hemem_workloads::{run_stream, StreamConfig};

fn main() {
    let _args = ExpArgs::parse();
    let devices = [
        ("DRAM", DeviceConfig::ddr4_dram(192 * GIB)),
        ("NVM", DeviceConfig::optane_dc(768 * GIB)),
    ];
    let mut rep = Report::new(
        "fig2",
        "Figure 2: throughput vs access size, 16 threads (GB/s)",
        &[
            "size (B)",
            "DRAM seq R",
            "DRAM rand R",
            "DRAM seq W",
            "DRAM rand W",
            "NVM seq R",
            "NVM rand R",
            "NVM seq W",
            "NVM rand W",
        ],
    );
    for size in [64u64, 128, 256, 512, 1024, 4096, 16384] {
        let mut cells = vec![size.to_string()];
        for (_, dev) in &devices {
            for op in [MemOp::Read, MemOp::Write] {
                for pat in [Pattern::Sequential, Pattern::Random] {
                    let mut cfg = StreamConfig::paper_default(dev.clone(), 16, op, pat);
                    cfg.access_size = size;
                    cells.push(f3(run_stream(&cfg).gb_per_sec()));
                }
            }
        }
        rep.row(&cells);
    }
    rep.emit();
}
