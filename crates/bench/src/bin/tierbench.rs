//! Tier-3 gate: the N-tier generalization must leave the 2-tier machine
//! byte-identical, and the managed 3-tier policy must beat naive
//! spill-at-allocation under NVM oversubscription.
//!
//! Gates:
//!
//! (a) **2-tier byte-identity** — a fixed 2-tier GUPS configuration is
//!     replayed and its stats fingerprint plus telemetry CSV are compared
//!     against the committed pre-PR results
//!     (`results/tierbench_2tier_baseline.txt` /
//!     `results/tierbench_2tier_telemetry.csv`). Any drift in RNG draw
//!     order, event ordering, or counter layout fails the gate.
//! (b) **Managed beats spill** — GUPS at 1.5x (DRAM+NVM)
//!     oversubscription on a 3-tier machine: HeMem with the SSD tier
//!     enabled must deliver strictly more aggregate throughput than the
//!     spill-at-allocation baseline that never migrates.
//! (c) **3-tier determinism** — the managed 3-tier run, repeated with
//!     the same seed, reproduces a byte-identical fingerprint.
//!
//! The gate configurations are fixed (scale, seeds, durations) so the
//! committed baselines stay comparable; CLI flags are accepted for
//! uniformity with the other benches but do not affect the gates.

use std::path::Path;

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_bench::{f3, fingerprint, record_wallclock, write_results, ExpArgs, Report};
use hemem_core::backend::AccessBatch;
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::telemetry::{Telemetry, TierTelemetry};
use hemem_memdev::GIB;
use hemem_sim::{LatencyClass, Ns};
use hemem_workloads::{Gups, GupsConfig, GupsResult};

/// Machine scale divisor for every gate (2 GiB DRAM + 8 GiB NVM).
const SCALE: u64 = 96;

/// Fixed args for the gate runs: CLI flags must not move the baseline.
fn gate_args() -> ExpArgs {
    ExpArgs {
        scale: SCALE,
        ..ExpArgs::default()
    }
}

/// The frozen 2-tier configuration replayed for gate (a): crashbench's
/// GUPS shape without kills.
fn two_tier_run() -> (Sim<AnyBackend>, GupsResult) {
    let args = gate_args();
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(2);
    cfg.duration = Ns::secs(2);
    let mc = args.machine();
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let res = gups.run(&mut sim);
    (sim, res)
}

/// The frozen 2-tier telemetry time series for gate (a): a
/// DRAM-overcommitted region demoting toward the watermark, sampled
/// every 50 ms (crashbench's telemetry shape without the kill).
fn two_tier_telemetry() -> String {
    let args = gate_args();
    let mc = args.machine();
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let id = sim.mmap(2 * sim.m.cfg.dram.capacity);
    sim.populate(id, true);
    let mut t = Telemetry::new(id, Ns::millis(50));
    for _ in 0..30 {
        t.maybe_sample(&sim);
        sim.advance(Ns::millis(50));
    }
    t.maybe_sample(&sim);
    t.csv()
}

/// The 3-tier gate machine: the gate (a) socket plus a 16 GiB swap
/// device. `seeded_faults` arms the SSD media-error hooks for the
/// replay half of gate (c).
fn three_tier_machine(seeded_faults: bool) -> MachineConfig {
    let mut mc = gate_args().machine().with_tier3(16 * GIB);
    if seeded_faults {
        mc.chaos.ssd_media_error = 2e-4;
        mc.chaos.ssd_media_wear_scale = 1e-9;
    }
    mc
}

/// The managed 3-tier backend: scaled HeMem with the NVM watermark
/// armed so background demotion cascades NVM -> SSD under pressure.
fn managed_backend(mc: &MachineConfig) -> AnyBackend {
    let mut hc = HeMemConfig::scaled_for(mc);
    hc.nvm_watermark = mc.nvm.capacity / 32;
    AnyBackend::HeMem(HeMem::new(hc))
}

/// GUPS at 1.5x (DRAM+NVM) oversubscription: the managed capacity is
/// 10 GiB, the working set 15 GiB. Access popularity is a steep power
/// law (zipf, theta 2): shuffled first-touch strands about a third of
/// the popular head on the SSD at populate time, which the managed
/// policy must rescue while leaving the cold tail on the device; the
/// spill baseline keeps paying device reads on the head forever. Small
/// batches keep the per-batch footprint below the partition size so the
/// tail really is idle between touches.
fn oversubscribed_gups(mc: &MachineConfig) -> GupsConfig {
    let managed = mc.dram.capacity + mc.nvm.capacity;
    let mut cfg = GupsConfig::paper(managed + managed / 2, mc.dram.capacity / 2);
    cfg.warmup = Ns::secs(2);
    cfg.duration = Ns::secs(2);
    cfg.zipf_theta = Some(2.0);
    cfg.batch_ops = 20_000;
    cfg
}

/// Runs oversubscribed GUPS on the 3-tier machine with the given
/// backend, returning the finished sim plus the workload result.
fn three_tier_run(backend: AnyBackend, seeded_faults: bool) -> (Sim<AnyBackend>, GupsResult) {
    let mc = three_tier_machine(seeded_faults);
    let cfg = oversubscribed_gups(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let res = gups.run(&mut sim);
    (sim, res)
}

/// The 3-tier telemetry time series: an oversubscribed region under
/// uniform churn, sampled every 50 ms, recording per-tier residency and
/// the major-fault tail.
fn three_tier_telemetry() -> String {
    let mc = three_tier_machine(false);
    let backend = managed_backend(&mc);
    let bytes = (mc.dram.capacity + mc.nvm.capacity) * 3 / 2;
    let mut sim = Sim::new(mc, backend);
    let id = sim.mmap(bytes);
    sim.populate(id, true);
    let pages = sim.m.space.region(id).page_count();
    let mut t = TierTelemetry::new(id, Ns::millis(50));
    for _ in 0..30 {
        t.maybe_sample(&sim);
        let batch = AccessBatch::uniform(id, 0, pages, 20_000, 8, 0.5, bytes);
        sim.submit_batch(0, &batch);
        loop {
            match sim.step() {
                Some((_, Event::ThreadReady(_))) | None => break,
                Some(_) => {}
            }
        }
        sim.advance(Ns::millis(50));
    }
    t.maybe_sample(&sim);
    t.csv()
}

/// Compares `contents` against the committed baseline at
/// `results/<filename>`, seeding the file when it does not exist yet
/// (the pre-PR capture step). Panics on drift.
fn compare_or_seed(filename: &str, contents: &str, what: &str) {
    let path = Path::new("results").join(filename);
    match std::fs::read_to_string(&path) {
        Ok(baseline) => {
            assert_eq!(
                baseline,
                contents,
                "{what} drifted from committed pre-PR baseline {}",
                path.display()
            );
            println!("gate (a): {what} byte-identical to {}", path.display());
        }
        Err(_) => {
            write_results(filename, contents, what);
            println!("gate (a): seeded {what} baseline at {}", path.display());
        }
    }
}

fn main() {
    let _args = ExpArgs::parse(); // accepted for CLI uniformity; gates are fixed
    let wall = std::time::Instant::now();
    // Every gate/telemetry run simulates 2 s warmup + 2 s measured.
    const RUN_SECS: f64 = 4.0;
    let mut sim_secs = 0.0f64;

    // Gate (a): the 2-tier machine is byte-identical to the pre-PR build.
    let (sim2, res2) = two_tier_run();
    let fp2 = format!("{}\n", fingerprint(&sim2));
    compare_or_seed("tierbench_2tier_baseline.txt", &fp2, "2-tier fingerprint");
    let csv2 = two_tier_telemetry();
    compare_or_seed("tierbench_2tier_telemetry.csv", &csv2, "2-tier telemetry");

    // Gate (b): the managed 3-tier policy beats spill-at-allocation.
    let (sim3, res3) = three_tier_run(managed_backend(&three_tier_machine(false)), false);
    let (sims, ress) = three_tier_run(BackendKind::Spill3.build(&three_tier_machine(false)), false);
    assert!(
        res3.gups > ress.gups,
        "gate (b) failed: managed 3-tier GUPS {} <= spill-at-allocation {}",
        res3.gups,
        ress.gups
    );
    println!(
        "gate (b): managed 3-tier GUPS {} beats spill-at-allocation {}",
        f3(res3.gups),
        f3(ress.gups)
    );

    // Gate (c): the managed 3-tier run replays byte-identically, with
    // and without the seeded SSD fault plan.
    let (sim3b, _) = three_tier_run(managed_backend(&three_tier_machine(false)), false);
    assert_eq!(
        fingerprint(&sim3),
        fingerprint(&sim3b),
        "gate (c) failed: managed 3-tier replay diverged"
    );
    let (simf1, _) = three_tier_run(managed_backend(&three_tier_machine(true)), true);
    let (simf2, _) = three_tier_run(managed_backend(&three_tier_machine(true)), true);
    assert_eq!(
        fingerprint(&simf1),
        fingerprint(&simf2),
        "gate (c) failed: seeded-fault 3-tier replay diverged"
    );
    println!(
        "gate (c): 3-tier replays byte-identical (plain + seeded faults, {} injected media errors)",
        simf1.m.chaos.stats().nvm_media_errors
    );

    let mut rep = Report::new(
        "tierbench",
        "Tier-3: managed N-tier policy vs spill-at-allocation (GUPS)",
        &[
            "config",
            "backend",
            "GUPS",
            "major faults",
            "swap ins",
            "swap outs",
            "migr done",
        ],
    );
    let major = |s: &Sim<AnyBackend>| s.m.trace.hist(LatencyClass::MajorFault).count().to_string();
    rep.row(&[
        "2-tier".to_string(),
        "HeMem".to_string(),
        f3(res2.gups),
        major(&sim2),
        sim2.m.stats.swap_ins.to_string(),
        sim2.m.stats.swap_outs.to_string(),
        sim2.m.stats.migrations_done.to_string(),
    ]);
    for (label, s, r) in [("HeMem", &sim3, &res3), ("Spill3", &sims, &ress)] {
        rep.row(&[
            "3-tier 1.5x".to_string(),
            label.to_string(),
            f3(r.gups),
            major(s),
            s.m.stats.swap_ins.to_string(),
            s.m.stats.swap_outs.to_string(),
            s.m.stats.migrations_done.to_string(),
        ]);
    }
    rep.emit();

    write_results(
        "tierbench_telemetry.csv",
        &three_tier_telemetry(),
        "3-tier telemetry",
    );
    // 8 simulated runs: 2-tier gate + its telemetry capture, five 3-tier
    // runs (managed, spill, replay, 2x seeded-fault), 3-tier telemetry.
    sim_secs += 8.0 * RUN_SECS;

    record_wallclock("tierbench", wall.elapsed().as_secs_f64(), sim_secs);
}
