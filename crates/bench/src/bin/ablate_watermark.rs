//! Ablation: DRAM free watermark size (DESIGN.md §4).
//!
//! The watermark keeps allocations landing in DRAM. Too small and growth
//! spills to NVM synchronously; too large and usable DRAM shrinks.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "ablate_watermark",
        "Ablation: DRAM free watermark",
        &["watermark (MiB)", "GUPS", "migrations"],
    );
    for mib in [0u64, 16, 64, 256, 1024] {
        let mc = args.machine();
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.policy.dram_watermark = mib << 20;
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
        cfg.warmup = Ns::secs(25);
        cfg.duration = Ns::secs(args.seconds.unwrap_or(6));
        let r = run_gups(&mut sim, cfg);
        rep.row(&[
            mib.to_string(),
            format!("{:.4}", r.gups),
            sim.m.stats.migrations_done.to_string(),
        ]);
    }
    rep.emit();
}
