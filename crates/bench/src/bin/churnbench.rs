//! Tenant-lifecycle gate: a seeded open-loop arrival / kill / balloon
//! schedule churns the tenant set mid-run, and four gates hold:
//!
//! (a) **Replay.** The schedule, run twice with the same seed (kills
//!     and a fault storm included), reproduces a byte-identical machine
//!     fingerprint and identical per-tenant operation streams.
//! (b) **Clean retirement.** After every kill the victim's frames are
//!     reclaimed from *all* tiers, its quota returns to the arbiter,
//!     and the tenant-scoped audit (including `FrameLeakAfterRetire`
//!     and `ZombieTenantQuota`) reports nothing.
//! (c) **Fault isolation.** With a neighbor afflicted by an NVM
//!     media-error + PEBS-overflow storm, the surviving anchor tenant's
//!     major-fault p99 stays within 2x of the storm-free run — the
//!     per-tenant circuit breaker keeps the storm from wedging the
//!     fault path or starving neighbors.
//! (d) **Trace transparency.** Enabling tracing (which adds the
//!     `tenant_admit` / `tenant_kill` / `tenant_drained` /
//!     `tenant_balloon` lifecycle instants) leaves the simulation
//!     byte-identical, and the expected lifecycle instants are present.
//!
//! The gate configuration is fixed (scale, seed, schedule); CLI flags
//! are accepted for uniformity with the other benches but do not move
//! the gates. Results land in `results/churnbench.csv`.

use std::time::Instant;

use hemem_bench::{
    assert_silent_audit, assert_tenant_drained, f3, fingerprint, record_wallclock, ExpArgs, Report,
};
use hemem_core::arbiter::ArbiterPolicy;
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::Sim;
use hemem_memdev::GIB;
use hemem_sim::{Ns, TenantKill};
use hemem_vmm::TenantId;
use hemem_workloads::churn::{run_churn, BalloonOp, ChurnConfig, ChurnResult, ChurnTenantSpec};

/// Machine scale divisor for every gate (2 GiB DRAM + 8 GiB NVM).
const SCALE: u64 = 96;
/// Tenant slots the manager is built with.
const SLOTS: usize = 4;
/// Simulated length of one schedule run.
const END_SECS: u64 = 6;
/// The kill time for the victim slot.
const KILL_AT_SECS: u64 = 3;

/// The churn gate machine: the tierbench socket plus a 16 GiB swap
/// device, a seeded kill for slot 1, and optionally the media-error +
/// PEBS storm for gate (c).
fn gate_machine(storm: bool, trace: bool) -> MachineConfig {
    let args = ExpArgs {
        scale: SCALE,
        ..ExpArgs::default()
    };
    let mut mc = args.machine().with_tier3(16 * GIB);
    mc.chaos.tenant_kill_at = vec![TenantKill {
        tenant: 1,
        at: Ns::secs(KILL_AT_SECS),
    }];
    if storm {
        // A wear-coupled media storm: the base rate stays low (a flat
        // high rate would retire the whole NVM pool during demand paging
        // and push every placement into DRAM, breaking quota accounting
        // for reasons unrelated to the storm under test), but the
        // wear-scaled term makes recycled frames fail ever harder — the
        // *consecutive* commit aborts that trip a tenant's circuit
        // breaker, with each failure retiring the worn frame so the
        // damage self-limits.
        mc.chaos.nvm_media_error = 0.02;
        mc.chaos.nvm_media_wear_scale = 0.1;
        mc.chaos.pebs_storm = 0.5;
    }
    mc.trace = trace;
    mc
}

/// The churn backend: slot capacity for the whole schedule, greedy
/// arbitration, and the NVM watermark armed so demotion cascades to the
/// SSD under pressure (that is what produces the anchor's major faults).
fn churn_backend(mc: &MachineConfig) -> HeMem {
    let mut hc = HeMemConfig::scaled_for(mc);
    hc.nvm_watermark = mc.nvm.capacity / 32;
    // An aggressive breaker for the short gate run: the wear-coupled
    // storm produces abort pairs/triples rather than the long streaks a
    // production threshold of 8 waits for.
    hc.breaker_threshold = 3;
    HeMem::churn(hc, SLOTS, ArbiterPolicy::GreedyMissRatio)
}

fn tenant(label: &str, arrive: Ns, ws: u64, hot: u64, threads: u32) -> ChurnTenantSpec {
    ChurnTenantSpec {
        label: label.to_string(),
        arrive,
        balloon: None,
        working_set: ws,
        hot_set: hot,
        threads,
        batch_ops: 50_000,
        write_fraction: 0.5,
    }
}

/// The fixed schedule. Aggregate working sets oversubscribe the managed
/// DRAM+NVM capacity, so the anchor's cold tail lives on the SSD and
/// its uniform segment takes measurable major faults; slot 1 dies at
/// 3 s on the fault plan's schedule; slot 2 balloons down at 2 s; slot
/// 3 joins late into the churned live set.
fn schedule(mc: &MachineConfig) -> ChurnConfig {
    let dram = mc.dram.capacity;
    let mut balloon = tenant("balloon", Ns::millis(400), dram, dram / 4, 2);
    balloon.balloon = Some(BalloonOp {
        at: Ns::secs(2),
        target_pages: 96,
        grace: Ns::millis(300),
    });
    ChurnConfig {
        tenants: vec![
            tenant("anchor", Ns::ZERO, 3 * dram, dram / 2, 4),
            tenant("victim", Ns::millis(200), 2 * dram, dram / 2, 4),
            balloon,
            tenant("late", Ns::secs(4), dram, dram / 4, 2),
        ],
        end: Ns::secs(END_SECS),
    }
}

/// Runs the schedule on a fresh machine; gate (b) assertions run on
/// every invocation so *every* configuration retires cleanly.
fn run_schedule(storm: bool, trace: bool) -> (Sim<HeMem>, ChurnResult) {
    let mc = gate_machine(storm, trace);
    let cfg = schedule(&mc);
    let mut sim = Sim::new(mc, churn_backend(&gate_machine(storm, trace)));
    let res = run_churn(&mut sim, &cfg);

    // Gate (b): clean retirement — no frames on any tier, no zombie
    // quota, audit silent.
    assert_eq!(sim.m.recovery.tenant_kills, 1, "seeded kill fired");
    assert_eq!(sim.m.recovery.tenant_drains, 1, "kill fully drained");
    assert_tenant_drained(&sim, TenantId(1));
    assert_silent_audit(&mut sim, "churn retire");
    (sim, res)
}

fn main() {
    let _args = ExpArgs::parse(); // accepted for CLI uniformity; gates are fixed
    let wall = Instant::now();
    let mut sim_secs = 0.0f64;

    // Gate (a): the storm schedule replays byte-identically.
    let (sa, ra) = run_schedule(true, false);
    let (sb, rb) = run_schedule(true, false);
    sim_secs += 2.0 * END_SECS as f64;
    assert_eq!(
        fingerprint(&sa),
        fingerprint(&sb),
        "gate (a) failed: storm churn replay diverged"
    );
    assert_eq!(
        ra.fingerprint, rb.fingerprint,
        "gate (a) failed: submission streams diverged"
    );
    for (x, y) in ra.per_tenant.iter().zip(&rb.per_tenant) {
        assert_eq!(x.stream_hash, y.stream_hash, "{} stream", x.label);
    }
    println!("gate (a): churn schedule replays byte-identical under the storm");

    // The storm-free baseline for gate (c).
    let (s0, r0) = run_schedule(false, false);
    sim_secs += END_SECS as f64;

    // Gate (c): the anchor's major-fault tail under the neighbor storm
    // stays within 2x of the storm-free run.
    let base = &r0.per_tenant[0];
    let storm = &ra.per_tenant[0];
    assert!(
        base.major_faults > 0 && storm.major_faults > 0,
        "gate (c) needs the anchor on the SSD in both runs \
         (baseline {} faults, storm {})",
        base.major_faults,
        storm.major_faults
    );
    assert!(
        storm.major_p99_ns <= 2 * base.major_p99_ns,
        "gate (c) failed: anchor major-fault p99 {} ns under the storm \
         vs {} ns storm-free (over 2x)",
        storm.major_p99_ns,
        base.major_p99_ns
    );
    assert!(
        sa.backend.stats().breaker_trips > 0,
        "gate (c): the storm must actually trip the per-tenant breaker"
    );
    println!(
        "gate (c): anchor major-fault p99 {} ns under storm vs {} ns clean \
         ({} breaker trips, {} media errors)",
        storm.major_p99_ns,
        base.major_p99_ns,
        sa.backend.stats().breaker_trips,
        sa.m.chaos.stats().nvm_media_errors
    );

    // Gate (d): tracing is transparent and the lifecycle instants exist.
    let (st, _rt) = run_schedule(true, true);
    sim_secs += END_SECS as f64;
    assert_eq!(
        fingerprint(&sa),
        fingerprint(&st),
        "gate (d) failed: enabling tracing changed the simulation"
    );
    let count = |name: &str| {
        st.m.trace
            .events()
            .iter()
            .filter(|e| e.name == name)
            .count()
    };
    assert_eq!(count("tenant_admit"), SLOTS, "one admit per slot");
    assert_eq!(count("tenant_kill"), 1, "the seeded kill traced");
    assert_eq!(count("tenant_drained"), 1, "the drain traced");
    assert!(count("tenant_balloon") >= 1, "the balloon traced");
    println!(
        "gate (d): tracing transparent; lifecycle instants admit={} kill={} drained={} balloon={}",
        count("tenant_admit"),
        count("tenant_kill"),
        count("tenant_drained"),
        count("tenant_balloon"),
    );

    // The report: per tenant, storm-free vs storm.
    let mut rep = Report::new(
        "churnbench",
        "Tenant churn: arrival/kill/balloon schedule, storm-free vs media+PEBS storm",
        &[
            "run",
            "tenant",
            "label",
            "admitted",
            "survived",
            "ops",
            "major_faults",
            "major_p99_ns",
        ],
    );
    for (mode, sim, res) in [("clean", &s0, &r0), ("storm", &sa, &ra)] {
        for t in &res.per_tenant {
            rep.row(&[
                mode.to_string(),
                t.tenant.to_string(),
                t.label.clone(),
                t.admitted.to_string(),
                t.survived.to_string(),
                t.ops.to_string(),
                t.major_faults.to_string(),
                t.major_p99_ns.to_string(),
            ]);
        }
        rep.row(&[
            mode.to_string(),
            "all".to_string(),
            "aggregate".to_string(),
            "-".to_string(),
            "-".to_string(),
            res.per_tenant
                .iter()
                .map(|t| t.ops)
                .sum::<u64>()
                .to_string(),
            sim.m
                .trace
                .hist(hemem_sim::LatencyClass::MajorFault)
                .count()
                .to_string(),
            f3(sim.backend.stats().balloon_escalations as f64),
        ]);
    }
    rep.emit();

    record_wallclock("churnbench", wall.elapsed().as_secs_f64(), sim_secs);
}
