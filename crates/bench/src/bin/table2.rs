//! Table 2: GUPS with a skewed read/write pattern — 512 GB working set,
//! 256 GB hot set of which 128 GB is write-only, remainder read-only.
//!
//! Paper: HeMem 0.056 GUPS; MM 0.86x; Nimble 0.36x. HeMem recognizes the
//! write-only portion and keeps it in DRAM.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::Nimble,
        BackendKind::MemoryMode,
        BackendKind::HeMem,
    ]);
    let mut rep = Report::new(
        "table2",
        "Table 2: GUPS write skew (256 GB hot / 128 GB write-only)",
        &["system", "GUPS", "x vs HeMem"],
    );
    let mut rows = Vec::new();
    let mut hemem_gups = None;
    for &kind in &backends {
        let mut sim = args.sim(kind);
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(256));
        cfg.write_only_bytes = args.gib(128);
        cfg.warmup = Ns::secs(300);
        cfg.duration = Ns::secs(args.seconds.unwrap_or(6));
        let r = run_gups(&mut sim, cfg);
        if kind == BackendKind::HeMem {
            hemem_gups = Some(r.gups);
        }
        rows.push((kind.label().to_string(), r.gups));
    }
    let base = hemem_gups.unwrap_or_else(|| rows.last().map(|r| r.1).unwrap_or(1.0));
    for (name, gups) in rows {
        rep.row(&[name, format!("{gups:.4}"), format!("{:.2}", gups / base)]);
    }
    rep.emit();
}
