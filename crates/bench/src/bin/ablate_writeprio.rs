//! Ablation: write-heavy page prioritization on/off (DESIGN.md §4).
//!
//! Runs the Table 2 write-skew workload with and without the policy of
//! moving write-heavy pages to the front of the hot queue. With NVM write
//! bandwidth ~10x scarcer than read bandwidth, promoting writers first
//! should matter exactly here.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "ablate_writeprio",
        "Ablation: write-priority migration (Table 2 workload)",
        &["write priority", "GUPS", "NVM media writes (GiB)"],
    );
    for wp in [true, false] {
        let mc = args.machine();
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.tracker.write_priority = wp;
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(256));
        cfg.write_only_bytes = args.gib(128);
        // Short warm-up on purpose: write priority changes the *order* of
        // promotions, so its effect shows during convergence (how fast
        // NVM writes stop), not at the converged steady state.
        cfg.warmup = Ns::secs(10);
        cfg.duration = Ns::secs(args.seconds.unwrap_or(90));
        let r = run_gups(&mut sim, cfg);
        rep.row(&[
            wp.to_string(),
            format!("{:.4}", r.gups),
            format!("{:.2}", r.nvm_writes as f64 / (1u64 << 30) as f64),
        ]);
    }
    rep.emit();
}
