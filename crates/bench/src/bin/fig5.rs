//! Figure 5: uniform-random GUPS over working-set sizes, 16 and 24
//! threads, for DRAM / NVM (X-Mem) / MM / Nimble / HeMem.
//!
//! Paper shape: HeMem == MM == DRAM while the set fits in DRAM; MM decays
//! from conflict misses as the set approaches DRAM capacity (HeMem up to
//! 3.2x better at 2/3 capacity); everything converges to NVM speed beyond
//! capacity; Nimble trails throughout.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::DramOnly,
        BackendKind::NvmOnly,
        BackendKind::MemoryMode,
        BackendKind::Nimble,
        BackendKind::HeMem,
    ]);
    // Paper sweep: 1-256 GB working sets on a 192 GB-DRAM machine.
    let paper_ws = [8u64, 16, 32, 64, 96, 128, 160, 192, 256];
    for threads in [16u32, 24] {
        let mut headers = vec!["WSS (paper GiB)".to_string()];
        headers.extend(backends.iter().map(|b| format!("{} (GUPS)", b.label())));
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Report::new(
            &format!("fig5_{threads}threads"),
            &format!("Figure 5: uniform GUPS, {threads} threads"),
            &hdr_refs,
        );
        for &ws in &paper_ws {
            let mut cells = vec![ws.to_string()];
            for &kind in &backends {
                let mut sim = args.sim(kind);
                let mut cfg = GupsConfig::paper(args.gib(ws), 0);
                cfg.threads = threads;
                cfg.warmup = Ns::secs(25);
                cfg.duration = Ns::secs(args.seconds.unwrap_or(4));
                let r = run_gups(&mut sim, cfg);
                cells.push(format!("{:.4}", r.gups));
            }
            rep.row(&cells);
        }
        rep.emit();
    }
}
