//! Ablation: cooling on/off (DESIGN.md §4).
//!
//! Without cooling, page counters only grow: once the hot set shifts, the
//! stale hot set keeps its classification forever and the newly hot data
//! competes for DRAM it can never reclaim.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{Gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let secs = args.seconds.unwrap_or(30);
    let mut rep = Report::new(
        "ablate_cooling",
        "Ablation: cooling disabled vs enabled (dynamic hot set)",
        &["cooling", "GUPS avg", "GUPS final-third"],
    );
    for cooling in [true, false] {
        let mc = args.machine();
        let mut hc = HeMemConfig::scaled_for(&mc);
        if !cooling {
            hc.tracker.cooling_threshold = u32::MAX;
        }
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
        cfg.warmup = Ns::secs(25);
        cfg.duration = Ns::secs(secs);
        cfg.rate_window = Ns::secs(1);
        let shift = args.gib(8);
        let mut g = Gups::setup(&mut sim, cfg);
        let at = Ns::secs(secs / 3);
        let res = g.run_with_events(&mut sim, &[(1, at)], |g, _| g.shift_hot_set(shift));
        let n = res.timeseries.len();
        let tail = if n >= 3 {
            res.timeseries[n - n / 3..].iter().map(|p| p.1).sum::<f64>() / (n / 3) as f64 / 1e9
        } else {
            0.0
        };
        rep.row(&[
            cooling.to_string(),
            format!("{:.4}", res.gups),
            format!("{tail:.4}"),
        ]);
    }
    rep.emit();
}
