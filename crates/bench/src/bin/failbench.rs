//! Tier-failure gate: seeded device degradation and offline events hit
//! a loaded three-tier machine mid-run, and four gates hold:
//!
//! (a) **Replay.** The NVM degrade-then-fail schedule and the SSD
//!     fail-then-readmit schedule, each run twice with the same seed,
//!     reproduce byte-identical machine fingerprints (health lifecycle
//!     counters included).
//! (b) **Clean evacuation.** The online evacuation drains the failed
//!     tier to zero allocated frames, the failure-domain audit
//!     (`FramesOnOfflineTier`, `EvacuationLeak`, degraded-capacity
//!     conservation) stays silent, and the survivor's major-fault p99
//!     stays within 4x of the failure-free run — N-1 operation, not a
//!     collapse.
//! (c) **Evacuation pays.** The same NVM failure with evacuation
//!     disabled (`evacuate_on_failure = false`) poisons every resident
//!     page; the evacuating run strictly beats the poison-everything
//!     baseline on completed operations, and the baseline's losses
//!     surface as typed poison faults, never silent wrong reads.
//! (d) **Trace transparency.** Enabling tracing (which adds the
//!     `tier_degrade` / `tier_offline` / `evacuation_{begin,page,done}`
//!     / `tier_readmit` health instants) leaves the simulation
//!     byte-identical, and the expected instants are present.
//!
//! The gate configuration is fixed (scale, seed, schedules); CLI flags
//! are accepted for uniformity with the other benches but do not move
//! the gates. Results land in `results/failbench.csv`, with the
//! per-tier health time series in `results/failbench_health.csv`.

use std::time::Instant;

use hemem_bench::{
    assert_silent_audit, fingerprint, record_wallclock, write_results, ExpArgs, Report,
};
use hemem_core::backend::{AccessBatch, SegmentAccess};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::{MachineConfig, TierHealth};
use hemem_core::runtime::{Event, Sim};
use hemem_core::telemetry::HealthTelemetry;
use hemem_memdev::{Pattern, GIB};
use hemem_sim::{Ns, TierFault};
use hemem_vmm::Tier;

/// Machine scale divisor for every gate (2 GiB DRAM + 8 GiB NVM).
const SCALE: u64 = 96;
/// SSD capacity behind the NVM tier.
const SSD_GIB: u64 = 16;
/// Absolute sim instant the measured window opens. Populate paces the
/// 9 GiB fill through virtual time (~4 s of zero-fill backlog), so the
/// window — and every scheduled health event — sits safely after it:
/// each leg warms up on an identical, healthy machine.
const WARM_SECS: u64 = 10;
/// Measured window length; the run ends at `WARM_SECS + END_SECS`.
const END_SECS: u64 = 6;
/// Worker threads driving the closed loop.
const THREADS: u32 = 4;

/// Which seeded failure schedule a leg carries.
#[derive(Clone, Copy, PartialEq)]
enum Schedule {
    /// No health events: the failure-free control.
    Clean,
    /// NVM degrades at 1.5 s and goes offline at 3 s.
    NvmFail,
    /// SSD goes offline at 2 s and is readmitted at 4 s.
    SsdFailReadmit,
}

/// One leg's fixed configuration.
struct Leg {
    schedule: Schedule,
    evacuate: bool,
    trace: bool,
}

/// Working set of every leg: it fits DRAM+NVM, and the armed NVM
/// watermark demotes the cold tail to the SSD over time — so the
/// control run takes measurable major faults without saturating the
/// SSD queue at populate time.
const WORKING_SET: u64 = 9 * GIB;

fn gate_machine(leg: &Leg) -> MachineConfig {
    let args = ExpArgs {
        scale: SCALE,
        ..ExpArgs::default()
    };
    let mut mc = args.machine().with_tier3(SSD_GIB * GIB);
    match leg.schedule {
        Schedule::Clean => {}
        Schedule::NvmFail => {
            mc.chaos.tier_degrade_at = vec![TierFault {
                tier: 1,
                at: Ns::millis(WARM_SECS * 1000 + 1500),
            }];
            mc.chaos.tier_fail_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(WARM_SECS + 3),
            }];
        }
        Schedule::SsdFailReadmit => {
            mc.chaos.tier_fail_at = vec![TierFault {
                tier: 2,
                at: Ns::secs(WARM_SECS + 2),
            }];
            mc.chaos.tier_readmit_at = vec![TierFault {
                tier: 2,
                at: Ns::secs(WARM_SECS + 4),
            }];
        }
    }
    mc.evacuate_on_failure = leg.evacuate;
    mc.trace = leg.trace;
    mc
}

fn gate_backend(mc: &MachineConfig) -> HeMem {
    let mut hc = HeMemConfig::scaled_for(mc);
    // Keep a quarter of NVM free: the demotion cascade populates the
    // SSD tier, so both the control and the SSD-failure leg have pages
    // there before anything breaks.
    hc.nvm_watermark = mc.nvm.capacity / 4;
    HeMem::new(hc)
}

/// A GUPS-style hot/cold split per thread partition: 95 % of accesses
/// hit a hot eighth, 5 % sweep the whole partition — the sweep keeps
/// re-touching whatever the failure displaced. The aggregate hot set
/// (1.125 GiB) fits DRAM even after the NVM tier dies, so the N-1
/// machine stays viable instead of thrashing every access through the
/// SSD. Batches are small enough that each thread turns over many
/// rounds inside the window, so completed operations resolve
/// throughput differences between legs.
fn batch_for(region: hemem_vmm::RegionId, total_pages: u64, tid: u32) -> AccessBatch {
    let per = total_pages / THREADS as u64;
    let lo = tid as u64 * per;
    let hi = if tid == THREADS - 1 {
        total_pages
    } else {
        lo + per
    };
    let hot_hi = lo + (hi - lo) / 8;
    AccessBatch {
        segments: vec![
            SegmentAccess {
                region,
                lo_page: lo,
                hi_page: hot_hi,
                weight: 0.95,
                llc_footprint: WORKING_SET / 8,
                write_fraction: None,
            },
            SegmentAccess {
                region,
                lo_page: lo,
                hi_page: hi,
                weight: 0.05,
                llc_footprint: WORKING_SET,
                write_fraction: None,
            },
        ],
        count: 500,
        object_size: 8,
        write_fraction: 0.5,
        pattern: Pattern::Random,
        cpu_ns_per_access: 2.0,
        mlp: 4.0,
        sweep: false,
    }
}

/// Outcome of one leg.
struct LegResult {
    sim: Sim<HeMem>,
    ops: u64,
    health_csv: String,
}

/// Runs one leg: populate, then a closed loop of fixed batches on
/// `THREADS` threads until the window closes. The health schedule fires
/// from the machine's fault plan.
fn run_leg(leg: &Leg) -> LegResult {
    let mc = gate_machine(leg);
    let backend = gate_backend(&mc);
    let mut sim = Sim::new(mc, backend);
    let id = sim.mmap(WORKING_SET);
    sim.populate(id, true);
    let total_pages = sim.m.space.region(id).page_count();
    let warm = Ns::secs(WARM_SECS);
    assert!(
        sim.now() < warm,
        "populate overran the warm-up window: {:?}",
        sim.now()
    );
    sim.run_until(warm);
    let mut health = HealthTelemetry::new(Ns::millis(250));
    health.maybe_sample(&sim);
    let end = Ns::secs(WARM_SECS + END_SECS);
    let mut live = THREADS;
    sim.set_app_threads(THREADS);
    for tid in 0..THREADS {
        sim.schedule_thread(warm, tid);
    }
    while live > 0 {
        let Some((now, ev)) = sim.step() else {
            break;
        };
        if let Event::ThreadReady(tid) = ev {
            health.maybe_sample(&sim);
            if now >= end {
                live -= 1;
                sim.set_app_threads(live.max(1));
                continue;
            }
            let b = batch_for(id, total_pages, tid);
            sim.submit_batch(tid, &b);
        }
    }
    health.maybe_sample(&sim);
    LegResult {
        ops: sim.m.stats.ops,
        health_csv: health.csv(),
        sim,
    }
}

fn nvm_leg(evacuate: bool, trace: bool) -> Leg {
    Leg {
        schedule: Schedule::NvmFail,
        evacuate,
        trace,
    }
}

fn main() {
    let _args = ExpArgs::parse(); // accepted for CLI uniformity; gates are fixed
    let wall = Instant::now();
    let mut sim_secs = 0.0f64;

    // Gate (a): both failure schedules replay byte-identically.
    let ra = run_leg(&nvm_leg(true, false));
    let rb = run_leg(&nvm_leg(true, false));
    sim_secs += 2.0 * END_SECS as f64;
    assert_eq!(
        fingerprint(&ra.sim),
        fingerprint(&rb.sim),
        "gate (a) failed: NVM degrade+fail replay diverged"
    );
    assert_eq!(
        ra.health_csv, rb.health_csv,
        "gate (a) failed: health time series diverged"
    );
    let ssd_leg = Leg {
        schedule: Schedule::SsdFailReadmit,
        evacuate: true,
        trace: false,
    };
    let sa = run_leg(&ssd_leg);
    let sb = run_leg(&ssd_leg);
    sim_secs += 2.0 * END_SECS as f64;
    assert_eq!(
        fingerprint(&sa.sim),
        fingerprint(&sb.sim),
        "gate (a) failed: SSD fail+readmit replay diverged"
    );
    println!("gate (a): NVM and SSD failure schedules replay byte-identical");

    // The failure-free control for gate (b).
    let clean = run_leg(&Leg {
        schedule: Schedule::Clean,
        evacuate: true,
        trace: false,
    });
    sim_secs += END_SECS as f64;

    // Gate (b): the failed tier drained to zero, the audit silent, and
    // the survivor's major-fault tail bounded.
    assert_eq!(
        ra.sim.m.tier_health(Tier::Nvm),
        TierHealth::Offline,
        "gate (b): the seeded failure must have fired"
    );
    assert_eq!(ra.sim.evacuating(), None, "gate (b): evacuation finished");
    assert!(ra.sim.m.health.evac_done[Tier::Nvm.rank()]);
    assert_eq!(
        ra.sim.m.nvm_pool.allocated_pages(),
        0,
        "gate (b) failed: frames left on the offline NVM tier"
    );
    assert!(
        ra.sim.m.health.evacuated_pages > 0,
        "gate (b): the evacuation must have moved pages, not just poisoned"
    );
    let mut ra_sim = ra.sim;
    assert_silent_audit(&mut ra_sim, "gate (b) after evacuation");
    // The SSD leg drains too, and the readmitted tier is healthy, empty,
    // and accepting pages again by the end of the run.
    assert!(
        sa.sim.m.health.evacuated_pages > 0,
        "gate (b): SSD evacuation must have moved pages"
    );
    assert_eq!(
        sa.sim.m.tier_health(Tier::Ssd),
        TierHealth::Healthy,
        "gate (b): the SSD readmit must have fired"
    );
    assert_eq!(sa.sim.m.health.readmits, 1);
    let mut sa_sim = sa.sim;
    assert_silent_audit(&mut sa_sim, "gate (b) after readmit");
    let p99 = |s: &Sim<HeMem>| {
        s.m.trace
            .hist(hemem_sim::LatencyClass::MajorFault)
            .quantile(0.99)
    };
    let (clean_p99, evac_p99) = (p99(&clean.sim), p99(&ra_sim));
    assert!(
        clean_p99 > 0,
        "gate (b) needs the control on the SSD (no major faults seen)"
    );
    assert!(
        evac_p99 <= 4 * clean_p99,
        "gate (b) failed: survivor major-fault p99 {evac_p99} ns vs \
         {clean_p99} ns failure-free (over 4x)"
    );
    println!(
        "gate (b): NVM drained ({} evacuated, {} poisoned), audit silent, \
         major-fault p99 {evac_p99} ns vs {clean_p99} ns clean",
        ra_sim.m.health.evacuated_pages, ra_sim.m.health.poisoned_pages,
    );

    // Gate (c): evacuation strictly beats the poison-everything baseline.
    let poison = run_leg(&nvm_leg(false, false));
    sim_secs += END_SECS as f64;
    assert!(
        poison.sim.m.health.poisoned_pages > 0,
        "gate (c): the baseline must actually lose the resident pages"
    );
    assert!(
        poison.sim.m.health.poison_faults > 0,
        "gate (c): baseline losses must surface as typed poison faults"
    );
    assert_eq!(
        ra_sim.m.health.poison_faults, 0,
        "gate (c): the evacuating run must not hit poisoned pages"
    );
    assert!(
        ra.ops > poison.ops,
        "gate (c) failed: evacuation ({} ops) did not beat the \
         poison-everything baseline ({} ops)",
        ra.ops,
        poison.ops
    );
    println!(
        "gate (c): evacuation {} ops > poison baseline {} ops \
         ({} pages poisoned, {} poison faults)",
        ra.ops, poison.ops, poison.sim.m.health.poisoned_pages, poison.sim.m.health.poison_faults,
    );

    // Gate (d): tracing is transparent and the health instants exist.
    let rt = run_leg(&nvm_leg(true, true));
    sim_secs += END_SECS as f64;
    assert_eq!(
        fingerprint(&ra_sim),
        fingerprint(&rt.sim),
        "gate (d) failed: enabling tracing changed the simulation"
    );
    let st = run_leg(&Leg {
        trace: true,
        ..ssd_leg
    });
    sim_secs += END_SECS as f64;
    assert_eq!(
        fingerprint(&sa_sim),
        fingerprint(&st.sim),
        "gate (d) failed: tracing changed the SSD leg"
    );
    let count =
        |s: &Sim<HeMem>, name: &str| s.m.trace.events().iter().filter(|e| e.name == name).count();
    assert_eq!(count(&rt.sim, "tier_degrade"), 1, "the degrade traced");
    assert_eq!(count(&rt.sim, "tier_offline"), 1, "the failure traced");
    assert_eq!(count(&rt.sim, "evacuation_begin"), 1);
    assert_eq!(count(&rt.sim, "evacuation_done"), 1);
    assert!(count(&rt.sim, "evacuation_page") > 0, "page moves traced");
    assert_eq!(count(&st.sim, "tier_readmit"), 1, "the readmit traced");
    println!(
        "gate (d): tracing transparent; health instants degrade={} offline={} \
         evac_pages={} readmit={}",
        count(&rt.sim, "tier_degrade"),
        count(&rt.sim, "tier_offline"),
        count(&rt.sim, "evacuation_page"),
        count(&st.sim, "tier_readmit"),
    );

    // The report: one row per leg.
    let mut rep = Report::new(
        "failbench",
        "Tier failure domains: evacuation vs poison baseline vs failure-free",
        &[
            "leg",
            "ops",
            "evacuated",
            "poisoned",
            "poison_faults",
            "major_p99_ns",
            "nvm_frames_end",
            "ssd_frames_end",
        ],
    );
    for (name, r) in [
        ("clean", &clean.sim),
        ("nvm_evacuate", &ra_sim),
        ("nvm_poison", &poison.sim),
        ("ssd_readmit", &sa_sim),
    ] {
        rep.row(&[
            name.to_string(),
            r.m.stats.ops.to_string(),
            r.m.health.evacuated_pages.to_string(),
            r.m.health.poisoned_pages.to_string(),
            r.m.health.poison_faults.to_string(),
            p99(r).to_string(),
            r.m.nvm_pool.allocated_pages().to_string(),
            r.m.ssd_pool.allocated_pages().to_string(),
        ]);
    }
    rep.emit();
    write_results("failbench_health.csv", &ra.health_csv, "health csv");

    record_wallclock("failbench", wall.elapsed().as_secs_f64(), sim_secs);
}
