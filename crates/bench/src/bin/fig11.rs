//! Figure 11: hot-memory read-threshold sensitivity (write threshold kept
//! at half the read threshold).
//!
//! Paper shape: very low thresholds overestimate the hot set; 6-20 works;
//! beyond ~20 the hot set is underestimated and GUPS falls.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "fig11",
        "Figure 11: hot read-threshold sensitivity",
        &["read threshold", "write threshold", "GUPS"],
    );
    for thresh in [1u32, 2, 4, 6, 8, 12, 16, 20, 32, 48, 64] {
        let mc = args.machine();
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.tracker.hot_read_threshold = thresh;
        hc.tracker.hot_write_threshold = (thresh / 2).max(1);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
        cfg.warmup = Ns::secs(25);
        cfg.duration = Ns::secs(args.seconds.unwrap_or(5));
        let r = run_gups(&mut sim, cfg);
        rep.row(&[
            thresh.to_string(),
            ((thresh / 2).max(1)).to_string(),
            format!("{:.4}", r.gups),
        ]);
    }
    rep.emit();
}
