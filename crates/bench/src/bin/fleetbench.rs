//! Fleet gate: the slot-pooled control plane must make tenant spawn
//! cheap, leak nothing across slot generations, and leave every
//! non-fleet configuration byte-identical.
//!
//! Gates:
//!
//! (a) **Pooled spawn wins** — the seeded open-loop fleet (Poisson
//!     arrivals, Pareto lifetimes, ≥512 offered instances over 32
//!     slots) runs with pooled spawn and again with the pool disabled
//!     (from-scratch rebuild per admission, the pre-pool behavior). The
//!     pooled run's spawn-to-first-touch p99 must sit at least 5x below
//!     the from-scratch baseline's.
//! (b) **Recycled = fresh** — the same arrival schedule is run once on
//!     recycled slots (pooled reset-in-place) and once with every spawn
//!     rebuilding from scratch, both charged the *same* simulated spawn
//!     cost. Stats fingerprint, workload stream hash, and the
//!     per-tenant telemetry CSV must compare byte-identical: a recycled
//!     slot is indistinguishable from a fresh one.
//! (c) **Determinism + off-is-off** — the fleet run with seeded
//!     mid-run slot kills (on top of the scheduled departures) replays
//!     byte-identically with a silent audit, and the frozen tierbench
//!     2-tier configuration still matches its committed pre-fleet
//!     baseline (the fleet segment must not appear in non-fleet
//!     fingerprints).
//!
//! The gate configurations are fixed (scale, seeds, durations) so runs
//! stay comparable; CLI flags are accepted for uniformity but do not
//! affect the gates.

use std::path::Path;
use std::time::Instant;

use hemem_baselines::BackendKind;
use hemem_bench::{
    assert_silent_audit, assert_tenant_drained, f3, fingerprint, record_wallclock, write_results,
    ExpArgs, Report,
};
use hemem_core::arbiter::ArbiterPolicy;
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::Sim;
use hemem_core::telemetry::TenantTelemetry;
use hemem_memdev::GIB;
use hemem_sim::{Ns, TenantKill};
use hemem_workloads::{run_fleet_with, FleetConfig, FleetResult, Gups, GupsConfig};

/// Slots in the gate pool; offered arrivals are ~16x this, so most
/// admissions land on recycled slots.
const SLOTS: usize = 32;
/// Offered instance arrivals per gate run.
const ARRIVALS: u64 = 512;
/// Slot working-set pages: pre-warmed at claim, and the size the
/// from-scratch cost model rebuilds.
const SLOT_PAGES: u64 = 4096;

/// The fleet gate machine: a deliberately undersized socket (1 GiB
/// DRAM + 1 GiB NVM against ~2 GiB of aggregate instance working set)
/// plus a swap tier, so the fleet demand-pages through all three tiers
/// and the per-tenant major-fault tail is actually exercised.
fn fleet_machine(seeded_kills: bool) -> MachineConfig {
    let mut mc = MachineConfig::small(1, 1).with_tier3(32 * GIB);
    mc.pebs.sample_period *= 96;
    if seeded_kills {
        // Mid-run slot kills on top of the scheduled departures: each
        // kills whatever instance occupies the slot at that moment.
        mc.chaos.tenant_kill_at = vec![
            TenantKill {
                tenant: 3,
                at: Ns::millis(300),
            },
            TenantKill {
                tenant: 7,
                at: Ns::millis(700),
            },
        ];
    }
    mc
}

/// A fleet backend over `SLOTS` deferred slots; `pooled` selects the
/// spawn mechanism (reset-in-place vs from-scratch rebuild).
fn fleet_backend(mc: &MachineConfig, pooled: bool) -> HeMem {
    let hc = HeMemConfig::scaled_for(mc);
    let mut h = HeMem::churn(hc, SLOTS, ArbiterPolicy::GreedyMissRatio);
    h.set_slot_pages(SLOT_PAGES);
    h.set_fleet_pooling(pooled);
    h
}

/// The frozen gate scenario.
fn gate_cfg(charge_pooled_cost: bool) -> FleetConfig {
    let mut cfg = FleetConfig::gate(ARRIVALS);
    cfg.working_set = 64 << 20;
    cfg.hot_set = 16 << 20;
    cfg.batch_ops = 5_000;
    cfg.slot_pages = SLOT_PAGES;
    cfg.charge_pooled_cost = charge_pooled_cost;
    cfg
}

/// One gate run: `pooled` flips the spawn mechanism, `pooled_cost` the
/// charged spawn latency, `seeded_kills` the chaos kill schedule. The
/// telemetry CSV (sampled every 20 ms) rides along for gate (b).
fn fleet_run(
    pooled: bool,
    pooled_cost: bool,
    seeded_kills: bool,
) -> (Sim<HeMem>, FleetResult, String) {
    let mc = fleet_machine(seeded_kills);
    let backend = fleet_backend(&mc, pooled);
    let mut sim = Sim::new(mc, backend);
    let mut tel = TenantTelemetry::new(Ns::millis(20));
    let res = run_fleet_with(&mut sim, &gate_cfg(pooled_cost), |s| {
        tel.maybe_sample(s);
    });
    (sim, res, tel.csv())
}

/// Gate (c) off-is-off leg: tierbench's frozen 2-tier GUPS run must
/// still match the committed pre-fleet baseline, and its fingerprint
/// must not contain a fleet segment.
fn gate_off_identity() {
    let args = ExpArgs {
        scale: 96,
        ..ExpArgs::default()
    };
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(2);
    cfg.duration = Ns::secs(2);
    let mc = args.machine();
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let _ = gups.run(&mut sim);
    let fp = format!("{}\n", fingerprint(&sim));
    assert!(
        !fp.contains("|fleet:"),
        "gate (c) failed: solo run grew a fleet fingerprint segment"
    );
    let path = Path::new("results").join("tierbench_2tier_baseline.txt");
    match std::fs::read_to_string(&path) {
        Ok(baseline) => {
            assert_eq!(
                baseline,
                fp,
                "gate (c) failed: solo 2-tier fingerprint drifted from committed {}",
                path.display()
            );
            println!(
                "gate (c): solo 2-tier run byte-identical to {}",
                path.display()
            );
        }
        Err(_) => println!("gate (c): no committed 2-tier baseline; skipping compare"),
    }
}

fn main() {
    let _args = ExpArgs::parse(); // accepted for CLI uniformity; gates are fixed
    let wall = Instant::now();
    let mut sim_secs = 0.0f64;

    // Gate (a): pooled spawn beats from-scratch by ≥5x at the p99.
    let (mut pooled_sim, pooled, pooled_csv) = fleet_run(true, true, false);
    let (mut scratch_sim, scratch, _) = fleet_run(false, false, false);
    sim_secs += pooled.end.as_nanos() as f64 / 1e9 + scratch.end.as_nanos() as f64 / 1e9;
    assert!(
        pooled.admitted >= ARRIVALS / 2 && pooled.admitted + pooled.shed == ARRIVALS,
        "gate (a) failed: only {}/{} arrivals admitted",
        pooled.admitted,
        ARRIVALS
    );
    let pool_stats = pooled_sim.backend.slot_pool().stats();
    assert_eq!(
        pool_stats.scratch_spawns, 0,
        "gate (a): pooled run must never rebuild from scratch"
    );
    assert!(
        pool_stats.recycles > pool_stats.spawns / 2,
        "gate (a): most spawns must land on recycled slots ({} recycles / {} spawns)",
        pool_stats.recycles,
        pool_stats.spawns
    );
    let (p99_pooled, p99_scratch) = (
        pooled.spawn_hist.quantile(0.99),
        scratch.spawn_hist.quantile(0.99),
    );
    assert!(
        p99_scratch >= 5 * p99_pooled,
        "gate (a) failed: scratch spawn p99 {p99_scratch} ns not ≥5x pooled {p99_pooled} ns"
    );
    assert_silent_audit(&mut pooled_sim, "gate (a) pooled fleet");
    assert_silent_audit(&mut scratch_sim, "gate (a) scratch fleet");
    // Every departed instance's slot drained back to zero frames.
    for t in (0..SLOTS as u32).map(hemem_vmm::TenantId) {
        if pooled_sim.backend.tenant_is_retired(t) {
            assert_tenant_drained(&pooled_sim, t);
        }
    }
    println!(
        "gate (a): {} instances over {} slots, spawn p99 {} ns pooled vs {} ns scratch ({}x)",
        pooled.admitted,
        SLOTS,
        p99_pooled,
        p99_scratch,
        p99_scratch / p99_pooled.max(1)
    );

    // Gate (b): recycled slots are indistinguishable from fresh ones —
    // same schedule, same charged cost, mechanism flipped.
    let (fresh_sim, fresh, fresh_csv) = fleet_run(false, true, false);
    sim_secs += fresh.end.as_nanos() as f64 / 1e9;
    assert_eq!(
        fingerprint(&pooled_sim),
        fingerprint(&fresh_sim),
        "gate (b) failed: recycled-slot machine state diverged from fresh slots"
    );
    assert_eq!(
        pooled.fingerprint, fresh.fingerprint,
        "gate (b) failed: recycled-slot workload stream diverged from fresh slots"
    );
    assert_eq!(
        pooled_csv, fresh_csv,
        "gate (b) failed: recycled-slot telemetry CSV diverged from fresh slots"
    );
    println!(
        "gate (b): recycled-slot run byte-identical to fresh slots \
         (fingerprint + stream + telemetry, {} recycles)",
        pool_stats.recycles
    );

    // Gate (c): seeded mid-run kills replay byte-identically, audit
    // silent; and non-fleet configs are untouched.
    let (mut killed_a, res_a, _) = fleet_run(true, true, true);
    let (killed_b, res_b, _) = fleet_run(true, true, true);
    sim_secs += res_a.end.as_nanos() as f64 / 1e9 + res_b.end.as_nanos() as f64 / 1e9;
    assert_eq!(
        fingerprint(&killed_a),
        fingerprint(&killed_b),
        "gate (c) failed: seeded-kill fleet replay diverged"
    );
    assert_eq!(
        res_a.fingerprint, res_b.fingerprint,
        "gate (c) failed: seeded-kill fleet stream diverged"
    );
    assert!(
        killed_a.m.recovery.tenant_kills > res_a.admitted - res_a.lifetimes.len() as u64,
        "gate (c): seeded kills must actually fire"
    );
    assert_silent_audit(&mut killed_a, "gate (c) seeded-kill fleet");
    println!(
        "gate (c): seeded-kill fleet replay byte-identical, audit silent ({} kills)",
        killed_a.m.recovery.tenant_kills
    );
    gate_off_identity();
    sim_secs += 4.0;

    let mut rep = Report::new(
        "fleetbench",
        "Fleet: slot-pooled spawn/teardown under open-loop tenant churn",
        &[
            "config",
            "offered",
            "admitted",
            "shed",
            "ops/s",
            "spawn p50 ns",
            "spawn p99 ns",
            "worst major p99 ns",
        ],
    );
    for (label, r) in [
        ("pooled", &pooled),
        ("scratch", &scratch),
        ("seeded kills", &res_a),
    ] {
        rep.row(&[
            label.to_string(),
            r.offered.to_string(),
            r.admitted.to_string(),
            r.shed.to_string(),
            f3(r.ops_per_sec()),
            r.spawn_hist.quantile(0.5).to_string(),
            r.spawn_hist.quantile(0.99).to_string(),
            r.worst_major_p99_ns().to_string(),
        ]);
    }
    rep.emit();
    write_results("fleetbench_telemetry.csv", &pooled_csv, "fleet telemetry");

    record_wallclock("fleetbench", wall.elapsed().as_secs_f64(), sim_secs);
}
