//! Figure 13: Silo TPC-C throughput vs warehouse count (16 threads);
//! 864 warehouses is the DRAM-capacity knee.
//!
//! Paper shape: below the knee HeMem leads MM by up to 13% and Nimble by
//! 82%; beyond it MM wins by ~17% (TPC-C is uniform with little reuse, so
//! cache-line-granularity caching beats page migration); all-NVM runs at
//! ~32% of HeMem.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{run_silo, SiloConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::MemoryMode,
        BackendKind::Nimble,
        BackendKind::HeMem,
        BackendKind::NvmOnly,
    ]);
    // Paper warehouse counts, scaled so the knee stays at DRAM capacity.
    let paper_wh = [16u64, 64, 216, 432, 648, 864, 1080, 1296, 1728];
    let mut headers = vec!["warehouses (paper)".to_string()];
    headers.extend(backends.iter().map(|b| format!("{} (txn/s)", b.label())));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new(
        "fig13",
        "Figure 13: Silo TPC-C warehouse scalability",
        &hdr_refs,
    );
    for &wh in &paper_wh {
        let scaled = ((wh / args.scale).max(2)) as u32;
        let mut cells = vec![wh.to_string()];
        for &kind in &backends {
            let mut sim = args.sim(kind);
            let mut cfg = SiloConfig::paper(scaled);
            cfg.warmup = Ns::secs(args.seconds.unwrap_or(4));
            cfg.duration = Ns::secs(args.seconds.unwrap_or(4));
            let r = run_silo(&mut sim, cfg);
            cells.push(format!("{:.0}", r.tps));
        }
        rep.row(&cells);
    }
    rep.emit();
}
