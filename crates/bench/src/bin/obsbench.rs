//! Observability smoke + artifact: runs GUPS with structured tracing on,
//! exports a Chrome-trace-event JSON (`results/obsbench_trace.json`)
//! loadable in Perfetto / `chrome://tracing`, and prints the per-class
//! latency percentiles the tracer's histograms accumulated.
//!
//! Three gates run on every invocation:
//!
//! 1. **Zero observable cost.** The same GUPS configuration runs twice,
//!    traced and untraced; machine stats, recovery counters, DMA/PEBS
//!    stats, pool occupancy, and every latency percentile must be
//!    byte-identical. Tracing must not perturb the simulation.
//! 2. **Valid trace.** The exported JSON parses, is wrapped in the
//!    `traceEvents` envelope, has nondecreasing timestamps, and every
//!    async span begin has a matching end.
//! 3. **Coverage.** The trace contains migration spans, fault instants,
//!    policy-pass attribution instants, and PEBS drain instants; the
//!    Nimble and Memory-Mode baselines emit their own policy-lane events.

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_bench::{fingerprint, write_results, ExpArgs, Report};
use hemem_core::runtime::Sim;
use hemem_core::telemetry::Telemetry;
use hemem_sim::{trace::validate_chrome, LatencyClass, Ns};
use hemem_workloads::{Gups, GupsConfig, GupsResult};

/// One GUPS run; `trace` toggles event capture and nothing else.
fn run_one(args: &ExpArgs, trace: bool) -> (Sim<AnyBackend>, GupsResult) {
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(1);
    cfg.duration = Ns::secs(args.seconds.unwrap_or(2));
    let mut mc = args.machine();
    mc.trace = trace;
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let res = gups.run(&mut sim);
    // Quiesce in-flight migrations so every span closes before export.
    for _ in 0..200 {
        if sim.m.journal.is_empty() {
            break;
        }
        sim.advance(Ns::millis(10));
    }
    (sim, res)
}

/// A short traced run of a baseline backend: fill past DRAM, let its
/// policy lane run, and return the sim for trace inspection.
fn baseline_run(args: &ExpArgs, kind: BackendKind) -> Sim<AnyBackend> {
    let mut mc = args.machine();
    mc.trace = true;
    let backend = kind.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let id = sim.mmap(2 * sim.m.cfg.dram.capacity);
    sim.populate(id, true);
    sim.advance(Ns::millis(500));
    sim
}

fn hist_rows(rep: &mut Report, backend: &str, sim: &Sim<AnyBackend>) {
    for class in LatencyClass::ALL {
        let h = sim.m.trace.hist(class);
        rep.row(&[
            backend.to_string(),
            class.name().to_string(),
            h.count().to_string(),
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string(),
            h.quantile(0.999).to_string(),
            h.max().to_string(),
        ]);
    }
}

fn main() {
    let args = ExpArgs::parse();

    // Gate 1: tracing has zero observable cost.
    let (traced, res_t) = run_one(&args, true);
    let (untraced, res_u) = run_one(&args, false);
    let (ft, fu) = (fingerprint(&traced), fingerprint(&untraced));
    assert_eq!(
        ft, fu,
        "a traced run must be byte-identical to an untraced one"
    );
    assert_eq!(res_t.updates, res_u.updates, "identical workload progress");
    assert!(
        untraced.m.trace.events().is_empty(),
        "disabled tracer captures no events"
    );
    println!("zero-cost: OK — traced and untraced GUPS runs are byte-identical");
    println!("  {ft}");

    // Gate 2: the exported trace is valid Chrome trace-event JSON.
    traced
        .m
        .trace
        .validate(false)
        .expect("span accounting consistent after quiesce");
    let json = traced.m.trace.export_chrome();
    validate_chrome(&json).expect("exported trace validates");
    write_results(
        "obsbench_trace.json",
        &json,
        "trace (load in Perfetto or chrome://tracing)",
    );
    println!(
        "trace: OK — {} events, {} bytes of valid Chrome-trace JSON",
        traced.m.trace.events().len(),
        json.len()
    );

    // Gate 3: coverage — the classes the issue names all appear.
    for needle in [
        "\"migration\"",
        "\"fault\"",
        "\"policy_pass\"",
        "\"pebs_drain\"",
    ] {
        assert!(json.contains(needle), "trace covers {needle}");
    }
    let pol = traced.m.trace.policy;
    assert!(pol.passes > 0, "policy passes attributed");
    println!(
        "attribution: {} passes, {} watermark demotions, {} promotions, \
         {} swap deferrals, {} throttled",
        pol.passes, pol.demote_watermark, pol.promote, pol.swap_deferrals, pol.throttled
    );

    let mut rep = Report::new(
        "obsbench",
        "Latency histograms from a traced GUPS run (ns)",
        &["backend", "class", "count", "p50", "p99", "p999", "max"],
    );
    hist_rows(&mut rep, "hemem", &traced);

    // Baseline traces: each emits its own policy-lane events.
    let nimble = baseline_run(&args, BackendKind::Nimble);
    assert!(
        nimble.m.trace.export_chrome().contains("\"nimble_scan\""),
        "nimble trace has scan instants"
    );
    hist_rows(&mut rep, "nimble", &nimble);
    let mm = baseline_run(&args, BackendKind::MemoryMode);
    assert!(
        mm.m.trace.export_chrome().contains("\"memory_mode_tick\""),
        "memory-mode trace marks its (single) tick"
    );
    hist_rows(&mut rep, "memory-mode", &mm);
    rep.emit();

    // Telemetry percentile columns ride on the same histograms; sample
    // the traced run once and show the new columns end-to-end.
    let mut tel = Telemetry::new(hemem_vmm::RegionId(0), Ns::millis(1));
    tel.maybe_sample(&traced);
    let csv = tel.csv();
    let header = csv.lines().next().unwrap_or_default();
    assert!(
        header.contains("wp_p50_ns,wp_p99_ns,wp_p999_ns,wp_max_ns")
            && header.ends_with("pebs_sample_period,pebs_drop_frac_milli"),
        "telemetry CSV carries percentile and PEBS-controller columns"
    );
    println!("telemetry: OK — percentile columns present ({header})");
}
