//! Figure 10: PEBS sampling-period sensitivity (512 GB working set, 16 GB
//! hot set); three seeds give the min/avg/max band.
//!
//! Paper shape: small periods drop samples (up to 30%) and are noisy;
//! 5k-100k is the sweet spot; beyond 100k, samples arrive too rarely and
//! GUPS falls.
//!
//! The adaptive companion table (`fig10_adaptive`) starts the
//! self-tuning controller from a too-hot, a sweet-spot, and a too-cold
//! period: wherever it starts, the controller must end inside the band
//! the fixed sweep identifies, with its final decision window inside the
//! drop budget.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_pebs::AdaptiveConfig;
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "fig10",
        "Figure 10: PEBS sample-period sensitivity",
        &["period", "GUPS min", "GUPS avg", "GUPS max", "dropped %"],
    );
    for period in [100u64, 1_000, 5_000, 20_000, 100_000, 1_000_000] {
        let mut vals = Vec::new();
        let mut dropped = 0.0;
        for seed in 0..3u64 {
            let mut mc = args.machine();
            mc.seed = mc.seed.wrapping_add(seed);
            mc.pebs.sample_period = period;
            let hc = HeMemConfig::scaled_for(&mc);
            let mut sim = Sim::new(mc, HeMem::new(hc));
            let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
            cfg.warmup = Ns::secs(25);
            cfg.duration = Ns::secs(args.seconds.unwrap_or(5));
            let r = run_gups(&mut sim, cfg);
            vals.push(r.gups);
            dropped += sim.m.pebs.stats().drop_fraction();
        }
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        rep.row(&[
            period.to_string(),
            format!("{min:.4}"),
            format!("{avg:.4}"),
            format!("{max:.4}"),
            format!("{:.3}", dropped / 3.0 * 100.0),
        ]);
    }
    rep.emit();

    // Adaptive operating points: the same GUPS with the controller armed,
    // started from each side of the fixed sweep's sweet spot.
    let mut arep = Report::new(
        "fig10_adaptive",
        "Figure 10 (adaptive): self-tuning PEBS operating points",
        &[
            "start period",
            "end min",
            "end max",
            "GUPS avg",
            "dropped %",
            "raises",
            "lowers",
            "last window drop milli",
        ],
    );
    for start in [100u64, 5_000, 1_000_000] {
        let mut gups = 0.0;
        let mut dropped = 0.0;
        let (mut end_min, mut end_max) = (u64::MAX, 0u64);
        let (mut raises, mut lowers, mut last_milli) = (0u64, 0u64, 0u64);
        for seed in 0..3u64 {
            let mut mc = args.machine();
            mc.seed = mc.seed.wrapping_add(seed);
            mc.pebs.sample_period = start;
            mc.pebs.adaptive = Some(AdaptiveConfig {
                min_period: 100,
                ..AdaptiveConfig::default()
            });
            let hc = HeMemConfig::scaled_for(&mc);
            let mut sim = Sim::new(mc, HeMem::new(hc));
            let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
            cfg.warmup = Ns::secs(25);
            cfg.duration = Ns::secs(args.seconds.unwrap_or(5));
            let r = run_gups(&mut sim, cfg);
            gups += r.gups;
            dropped += sim.m.pebs.stats().drop_fraction();
            let end = sim.m.pebs.sample_period();
            end_min = end_min.min(end);
            end_max = end_max.max(end);
            let a = sim.m.pebs.adapt_stats();
            raises += a.raises;
            lowers += a.lowers;
            last_milli = last_milli.max(a.last_window_drop_milli);
        }
        arep.row(&[
            start.to_string(),
            end_min.to_string(),
            end_max.to_string(),
            format!("{:.4}", gups / 3.0),
            format!("{:.3}", dropped / 3.0 * 100.0),
            raises.to_string(),
            lowers.to_string(),
            last_milli.to_string(),
        ]);
    }
    arep.emit();
}
