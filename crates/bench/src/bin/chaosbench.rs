//! Chaos sweep: runs GUPS on HeMem under increasing injected-fault rates
//! and reports the graceful-degradation counters.
//!
//! Faults injected (all seeded and deterministic, see
//! `hemem_sim::faultplan`): DMA submission failures and channel loss,
//! NVM media errors scaling with page wear, PEBS buffer-overflow storms,
//! and fault-handler stalls. The interesting output is not throughput but
//! the reaction counters: DMA retries and thread-copy fallbacks, failed
//! migrations restored to their queues, pages retired to the poisoned
//! list, and the PEBS drop fraction. The final check runs one faulty
//! configuration twice and asserts byte-identical stats — a chaos run is
//! exactly as reproducible as a clean one.

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_bench::{f3, fingerprint, ExpArgs, Report};
use hemem_core::runtime::Sim;
use hemem_sim::{FaultPlanConfig, Ns};
use hemem_workloads::{Gups, GupsConfig, GupsResult};

/// Master fault rates swept; per-site rates are derived from each.
const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.5];

/// Derives the per-site fault plan from one master rate.
fn chaos(rate: f64) -> FaultPlanConfig {
    let mut c = FaultPlanConfig::none();
    c.dma_submit_fail = rate;
    c.dma_channel_loss = rate / 5.0;
    c.nvm_media_error = rate / 20.0;
    c.nvm_media_wear_scale = rate / 200.0;
    c.pebs_storm = rate;
    c.fault_thread_stall = rate / 10.0;
    c
}

/// Runs one GUPS configuration under one fault rate.
fn run_one(args: &ExpArgs, workload: &str, rate: f64) -> (Sim<AnyBackend>, GupsResult) {
    let mut mc = args.machine();
    mc.chaos = chaos(rate);
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(3);
    cfg.duration = Ns::secs(args.seconds.unwrap_or(8));
    if workload == "zipf" {
        cfg.zipf_theta = Some(0.99);
    }
    let mut gups = Gups::setup(&mut sim, cfg);
    let res = gups.run(&mut sim);
    (sim, res)
}

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "chaosbench",
        "Chaos sweep: GUPS under injected faults (HeMem)",
        &[
            "workload",
            "rate",
            "GUPS",
            "migr done",
            "migr failed",
            "dma retries",
            "dma fallbacks",
            "retired",
            "pebs storms",
            "stalls",
            "pebs drop frac",
        ],
    );
    for workload in ["hot90", "zipf"] {
        for &rate in &RATES {
            let (sim, res) = run_one(&args, workload, rate);
            let s = &sim.m.stats;
            let c = sim.m.chaos.stats();
            rep.row(&[
                workload.to_string(),
                f3(rate),
                format!("{:.4}", res.gups),
                s.migrations_done.to_string(),
                s.migrations_failed.to_string(),
                s.dma_retries.to_string(),
                s.dma_fallbacks.to_string(),
                s.pages_retired.to_string(),
                c.pebs_storms.to_string(),
                c.fault_thread_stalls.to_string(),
                f3(sim.m.pebs.stats().drop_fraction()),
            ]);
        }
    }
    rep.emit();

    // Reproducibility gate: one faulty configuration, run twice with the
    // same seed and plan, must produce byte-identical stats.
    let (a, _) = run_one(&args, "hot90", 0.05);
    let (b, _) = run_one(&args, "hot90", 0.05);
    let (fa, fb) = (fingerprint(&a), fingerprint(&b));
    assert_eq!(
        fa, fb,
        "same seed + same fault plan must reproduce identical stats"
    );
    println!("determinism: OK — two runs at rate 0.05 are byte-identical");
    println!("  {fa}");
}
