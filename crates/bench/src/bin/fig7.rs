//! Figure 7: GUPS scalability vs thread count (512 GB working set, 16 GB
//! hot set) for HeMem (DMA), MM, and HeMem with copy threads.
//!
//! Paper shape: HeMem and MM scale together until ~21 threads, where
//! HeMem's background threads start contending for cores (~10% below
//! MM); the thread-copy variant loses a further ~14%.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{run_gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::MemoryMode,
        BackendKind::HeMem,
        BackendKind::HeMemThreads,
    ]);
    let mut headers = vec!["threads".to_string()];
    headers.extend(backends.iter().map(|b| format!("{} (GUPS)", b.label())));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new(
        "fig7",
        "Figure 7: GUPS scalability (512 GB WSS, 16 GB hot)",
        &hdr_refs,
    );
    for threads in [1u32, 4, 8, 12, 16, 20, 21, 22, 24] {
        let mut cells = vec![threads.to_string()];
        for &kind in &backends {
            let mut sim = args.sim(kind);
            let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
            cfg.threads = threads;
            cfg.warmup = Ns::secs(30);
            cfg.duration = Ns::secs(args.seconds.unwrap_or(5));
            let r = run_gups(&mut sim, cfg);
            cells.push(format!("{:.4}", r.gups));
        }
        rep.row(&cells);
    }
    rep.emit();
}
