//! Figure 15: betweenness centrality per-iteration runtime, graph exceeds
//! DRAM (paper: 2^29 vertices vs 192 GB).
//!
//! Paper shape: HeMem identifies the hot/written parts and leads; the
//! page-table-scanning variant overestimates the hot set and its first
//! iterations run up to 3x slower before converging to HeMem; Nimble
//! averages 36% slower than HeMem; both beat MM (58% / 16%).

use hemem_baselines::BackendKind;
use hemem_bench::{bc::run_bc, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    // Keep the graph *larger than* the scaled DRAM: shrink no faster
    // than the machine.
    let scale = 29 - (args.scale as f64).log2().floor() as u32;
    run_bc(
        &args,
        scale,
        "fig15",
        "Figure 15: BC, graph exceeds DRAM",
        &[
            BackendKind::HeMem,
            BackendKind::PtAsync,
            BackendKind::Nimble,
            BackendKind::MemoryMode,
        ],
    );
}
