//! Figure 1: memory access throughput scalability — DRAM vs Optane,
//! sequential vs random, read vs write, 1-24 threads, 256 B blocks.

use hemem_bench::{f3, ExpArgs, Report};
use hemem_memdev::{DeviceConfig, MemOp, Pattern, GIB};
use hemem_workloads::{run_stream, StreamConfig};

fn main() {
    let _args = ExpArgs::parse();
    let devices = [
        ("DRAM", DeviceConfig::ddr4_dram(192 * GIB)),
        ("NVM", DeviceConfig::optane_dc(768 * GIB)),
    ];
    let mut rep = Report::new(
        "fig1",
        "Figure 1: throughput scalability (GB/s, 256 B blocks)",
        &[
            "threads",
            "DRAM seq R",
            "DRAM rand R",
            "DRAM seq W",
            "DRAM rand W",
            "NVM seq R",
            "NVM rand R",
            "NVM seq W",
            "NVM rand W",
        ],
    );
    for threads in [1u32, 2, 4, 8, 12, 16, 20, 24] {
        let mut cells = vec![threads.to_string()];
        for (_, dev) in &devices {
            for op in [MemOp::Read, MemOp::Write] {
                for pat in [Pattern::Sequential, Pattern::Random] {
                    let g = run_stream(&StreamConfig::paper_default(dev.clone(), threads, op, pat))
                        .gb_per_sec();
                    cells.push(f3(g));
                }
            }
        }
        // Reorder: seq R, rand R, seq W, rand W per device (already so).
        rep.row(&cells);
    }
    rep.emit();
}
