//! Figure 16: NVM writes per BC iteration (wear), graph exceeding DRAM.
//!
//! Paper shape: MM writes NVM at a constant high rate (dirty cache-line
//! evictions); HeMem-PEBS finds the few write-hot pages quickly and makes
//! ~10x fewer NVM writes per iteration; HeMem-PT starts three orders of
//! magnitude above PEBS and converges once the write-hot set has been
//! migrated.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{Bc, GraphConfig};

fn main() {
    let args = ExpArgs::parse();
    // Keep the graph *larger than* the scaled DRAM: shrink no faster
    // than the machine.
    let scale = 29 - (args.scale as f64).log2().floor() as u32;
    let backends = args.backends_or(&[
        BackendKind::HeMem,
        BackendKind::PtAsync,
        BackendKind::MemoryMode,
    ]);
    let mut series = Vec::new();
    for &kind in &backends {
        let mut sim = args.sim(kind);
        let mut cfg = GraphConfig::paper(scale);
        cfg.iterations = 15;
        let bc = Bc::setup(&mut sim, cfg);
        // Let the backend settle after the load phase.
        sim.advance(Ns::secs(1));
        let res = bc.run(&mut sim);
        series.push((kind.label(), res));
    }
    let mut headers = vec!["iteration".to_string()];
    headers.extend(series.iter().map(|(l, _)| format!("{l} (NVM MiB written)")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new("fig16", "Figure 16: NVM writes per BC iteration", &hdr_refs);
    let n = series
        .iter()
        .map(|(_, r)| r.iterations.len())
        .min()
        .unwrap_or(0);
    for i in 0..n {
        let mut cells = vec![(i + 1).to_string()];
        for (_, r) in &series {
            cells.push(format!(
                "{:.1}",
                r.iterations[i].nvm_writes as f64 / (1 << 20) as f64
            ));
        }
        rep.row(&cells);
    }
    rep.emit();
}
