//! Figure 8: HeMem overhead breakdown on GUPS (512 GB working set, 16 GB
//! hot set):
//!
//! - **Opt**: hot set manually placed in DRAM; no scanning, no migration.
//! - **PEBS**: sampling enabled, migration disabled.
//! - **PT Scan**: page-table scanning (with A/D-bit clears and
//!   shootdowns) instead of PEBS, migration disabled.
//! - **PEBS + Migrate**: full HeMem.
//! - **PT Scan + M. Sync**: scan and migrate sequentially on one thread.
//! - **PT Scan + M. Async**: separate scanning thread.
//!
//! Paper shape: PEBS ~= Opt; PT Scan loses ~18%; full HeMem within ~6% of
//! Opt; M. Sync collapses to ~18% of Opt; M. Async ~43% of Opt.

use hemem_baselines::pt_hemem::{HeMemPt, PtMode};
use hemem_baselines::{AnyBackend, StaticTier};
use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{Gups, GupsConfig};

fn gups_cfg(args: &ExpArgs) -> GupsConfig {
    let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
    cfg.warmup = Ns::secs(25);
    cfg.duration = Ns::secs(args.seconds.unwrap_or(5));
    cfg
}

fn run_config(args: &ExpArgs, name: &str) -> f64 {
    let mc = args.machine();
    let hc = HeMemConfig::scaled_for(&mc);
    let backend = match name {
        "Opt" => AnyBackend::Static(StaticTier::dram_only()),
        "PEBS" => {
            let mut c = hc.clone();
            c.enable_migration = false;
            AnyBackend::HeMem(HeMem::new(c))
        }
        "PT Scan" => AnyBackend::Pt(HeMemPt::new(hc.clone(), PtMode::Async).without_migration()),
        "PEBS + Migrate" => AnyBackend::HeMem(HeMem::new(hc.clone())),
        "PT Scan + M. Sync" => AnyBackend::Pt(HeMemPt::new(hc.clone(), PtMode::Sync)),
        "PT Scan + M. Async" => AnyBackend::Pt(HeMemPt::new(hc.clone(), PtMode::Async)),
        _ => unreachable!(),
    };
    let mut sim = Sim::new(mc, backend);
    let mut cfg = gups_cfg(args);
    // Tracking-only configurations start from the ideal placement, as in
    // the paper (they measure tracking overhead, not convergence).
    if matches!(name, "Opt" | "PEBS" | "PT Scan") {
        cfg.hot_first_populate = true;
    }
    let mut g = Gups::setup(&mut sim, cfg);
    g.run(&mut sim).gups
}

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "fig8",
        "Figure 8: HeMem overhead breakdown (GUPS; 512 GB WSS, 16 GB hot)",
        &["configuration", "GUPS", "vs Opt"],
    );
    let names = [
        "Opt",
        "PEBS",
        "PT Scan",
        "PEBS + Migrate",
        "PT Scan + M. Sync",
        "PT Scan + M. Async",
    ];
    let mut opt = None;
    for name in names {
        let gups = run_config(&args, name);
        let base = *opt.get_or_insert(gups);
        rep.row(&[
            name.to_string(),
            format!("{gups:.4}"),
            format!("{:.2}", gups / base),
        ]);
    }
    rep.emit();
}
