//! Crash sweep: kills the HeMem manager process at seeded instants
//! during a GUPS run and verifies crash recovery end to end.
//!
//! Each row kills the manager at a different point in the run (early,
//! mid-warmup, steady state, and a repeated-kill row). Between the kill
//! and the watchdog's restart the policy cadence is dead: no migrations
//! start or complete, in-flight journal entries go stale, and app
//! faults keep landing kernel-side. Recovery must roll every prepared
//! migration back, rebuild the hot/cold queues from surviving per-page
//! counters, and resume the workload. Every run must (a) recover —
//! the watchdog restarted the manager and it is up at the end, (b)
//! audit clean — page conservation, ledger↔mapping agreement, no
//! double-mapped frames, journal quiescence, and (c) complete — GUPS
//! finished its measurement phase. The final gate reruns one kill
//! configuration and asserts byte-identical stats: a crashed-and-
//! recovered run is exactly as reproducible as a clean one.

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_bench::{f3, fingerprint, write_results, ExpArgs, Report};
use hemem_core::runtime::Sim;
use hemem_core::telemetry::Telemetry;
use hemem_memdev::GIB;
use hemem_sim::Ns;
use hemem_workloads::{Gups, GupsConfig, GupsResult};

/// Kill schedules swept: named fractions of the total run at which the
/// manager dies. The watchdog restarts it each time.
const SCHEDULES: [(&str, &[f64]); 4] = [
    ("early", &[0.05]),
    ("warmup", &[0.2]),
    ("steady", &[0.7]),
    ("repeated", &[0.15, 0.45, 0.75]),
];

/// Runs one GUPS configuration with kills at the given run fractions.
fn run_one(args: &ExpArgs, fractions: &[f64]) -> (Sim<AnyBackend>, GupsResult) {
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(2);
    cfg.duration = Ns::secs(args.seconds.unwrap_or(6));
    let total = cfg.warmup.as_nanos() + cfg.duration.as_nanos();
    let mut mc = args.machine();
    mc.chaos.manager_kill_at = fractions
        .iter()
        .map(|f| Ns::from_nanos_f64(total as f64 * f))
        .collect();
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let res = gups.run(&mut sim);
    (sim, res)
}

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "crashbench",
        "Crash sweep: GUPS with seeded manager kills (HeMem)",
        &[
            "schedule",
            "kills",
            "GUPS",
            "journal replays",
            "rollbacks",
            "swap rollbacks",
            "watchdog restarts",
            "audit violations",
            "migr done",
        ],
    );
    for (name, fractions) in SCHEDULES {
        let (mut sim, res) = run_one(&args, fractions);
        let violations = sim.run_audit(true);
        let rec = sim.m.recovery;
        // Gate (a): every kill was detected and the manager restarted.
        assert_eq!(
            rec.manager_kills,
            fractions.len() as u64,
            "{name}: every scheduled kill fired"
        );
        assert!(
            rec.watchdog_restarts >= rec.manager_kills,
            "{name}: watchdog restarted the manager after each kill"
        );
        assert!(!sim.manager_down(), "{name}: manager up at end of run");
        // Gate (b): the recovered machine satisfies every invariant.
        assert!(
            violations.is_empty(),
            "{name}: post-run audit clean, got {violations:?}"
        );
        // Gate (c): the workload completed its measurement phase.
        assert!(res.updates > 0, "{name}: GUPS completed");
        rep.row(&[
            name.to_string(),
            rec.manager_kills.to_string(),
            f3(res.gups),
            rec.journal_replays.to_string(),
            rec.journal_rollbacks.to_string(),
            rec.swap_rollbacks.to_string(),
            rec.watchdog_restarts.to_string(),
            rec.audit_violations.to_string(),
            sim.m.stats.migrations_done.to_string(),
        ]);
    }
    rep.emit();

    // Reproducibility gate: the repeated-kill schedule, run twice with
    // the same seed, must produce byte-identical stats.
    let (a, _) = run_one(&args, SCHEDULES[3].1);
    let (b, _) = run_one(&args, SCHEDULES[3].1);
    let (fa, fb) = (fingerprint(&a), fingerprint(&b));
    assert_eq!(
        fa, fb,
        "same seed + same kill schedule must reproduce identical stats"
    );
    println!("determinism: OK — two crashed-and-recovered runs are byte-identical");
    println!("  {fa}");

    telemetry_sample(&args);
}

/// Writes `results/crashbench_telemetry.csv`: a DRAM-overcommitted
/// region demoting toward the watermark, with a manager kill landing
/// mid-demotion, sampled every 50 ms. The recovery columns show the
/// kill, the journal rollbacks, and the watchdog restart as step
/// functions in the time series.
fn telemetry_sample(args: &ExpArgs) {
    let mut mc = args.machine();
    mc.watchdog = Some(Default::default());
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let id = sim.mmap(2 * sim.m.cfg.dram.capacity.max(GIB));
    sim.populate(id, true);
    let mut t = Telemetry::new(id, Ns::millis(50));
    for i in 0..60 {
        t.maybe_sample(&sim);
        if i == 20 {
            sim.inject_manager_kill();
        }
        sim.advance(Ns::millis(50));
    }
    t.maybe_sample(&sim);
    assert!(!sim.manager_down(), "telemetry run recovered");
    assert!(sim.run_audit(true).is_empty(), "telemetry run audits clean");
    write_results("crashbench_telemetry.csv", &t.csv(), "telemetry csv");
}
