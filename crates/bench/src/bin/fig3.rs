//! Figure 3: page-table scan time vs memory capacity for base, huge, and
//! giant pages.

use hemem_bench::{ExpArgs, Report};
use hemem_vmm::{PageSize, ScanConfig};

fn main() {
    let _args = ExpArgs::parse();
    let scan = ScanConfig::default();
    let mut rep = Report::new(
        "fig3",
        "Figure 3: page table scan time vs capacity",
        &[
            "capacity (GiB)",
            "4 KiB pages (ms)",
            "2 MiB pages (ms)",
            "1 GiB pages (ms)",
        ],
    );
    for gib in [1u64, 4, 16, 64, 256, 1024, 2048, 4096] {
        let bytes = gib << 30;
        let mut cells = vec![gib.to_string()];
        for ps in [PageSize::Base4K, PageSize::Huge2M, PageSize::Giga1G] {
            let t = scan.scan_time(bytes, ps);
            cells.push(format!("{:.4}", t.as_millis_f64()));
        }
        rep.row(&cells);
    }
    rep.emit();
}
