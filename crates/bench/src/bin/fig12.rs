//! Figure 12: memory cooling-threshold sensitivity under the dynamic
//! hot-set shift.
//!
//! Paper shape: cooling at the hot threshold (8) cools too aggressively;
//! 10-18 adapt well; 30 considers too many pages hot and loses GUPS.

use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{Gups, GupsConfig};

fn main() {
    let args = ExpArgs::parse();
    let secs = args.seconds.unwrap_or(20);
    let mut rep = Report::new(
        "fig12",
        "Figure 12: cooling-threshold sensitivity (dynamic hot set)",
        &["cooling threshold", "GUPS avg", "GUPS final-third"],
    );
    for cool in [8u32, 10, 14, 18, 24, 30] {
        let mc = args.machine();
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.tracker.cooling_threshold = cool;
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let mut cfg = GupsConfig::paper(args.gib(512), args.gib(16));
        cfg.warmup = Ns::secs(25);
        cfg.duration = Ns::secs(secs);
        cfg.rate_window = Ns::secs(1);
        let shift = args.gib(4);
        let mut g = Gups::setup(&mut sim, cfg);
        let at = Ns::secs(secs * 2 / 5);
        let res = g.run_with_events(&mut sim, &[(1, at)], |g, _| g.shift_hot_set(shift));
        let n = res.timeseries.len();
        let tail: f64 = if n >= 3 {
            res.timeseries[n - n / 3..].iter().map(|p| p.1).sum::<f64>() / (n / 3) as f64
        } else {
            0.0
        };
        rep.row(&[
            cool.to_string(),
            format!("{:.4}", res.gups),
            format!("{:.4}", tail / 1e9),
        ]);
    }
    rep.emit();
}
