//! `workbench` — run any workload on any tiered-memory backend with one
//! command, outside the fixed paper-experiment sweeps.
//!
//! ```text
//! workbench gups  --backend hemem --ws-gib 64 --hot-gib 8 --threads 16
//! workbench gups  --backend mm --zipf 0.99 --ws-gib 32
//! workbench silo  --backend nimble --warehouses 400
//! workbench kvs   --backend hemem --ws-gib 48 --load 0.3
//! workbench bc    --backend hemem --graph-scale 25
//! workbench stream --op write --pattern random --threads 4 --device nvm
//! ```
//!
//! Global flags: `--full | --scale N` select the machine size (default
//! 1/8 of the paper's 192 GB + 768 GB socket), `--seed S`, `--seconds T`.

use hemem_baselines::BackendKind;
use hemem_bench::{f3, ExpArgs, Report};
use hemem_memdev::{DeviceConfig, MemOp, Pattern, GIB};
use hemem_sim::Ns;
use hemem_workloads::{
    run_kvs, run_silo, run_stream, Bc, GraphConfig, Gups, GupsConfig, KvsConfig, SiloConfig,
    StreamConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: workbench <gups|silo|kvs|bc|stream> [options]\n\
         common: --backend <hemem|mm|nimble|xmem|dram|nvm|ptsync|ptasync|thermostat>\n\
         \x20        --full | --scale N   --seed S   --seconds T   --threads N\n\
         gups:   --ws-gib G --hot-gib G [--zipf THETA] [--write-only-gib G]\n\
         silo:   --warehouses N\n\
         kvs:    --ws-gib G [--load F]\n\
         bc:     --graph-scale S [--iterations N]\n\
         stream: --device <dram|nvm> --op <read|write> --pattern <seq|random> --size B"
    );
    std::process::exit(2)
}

struct Opts {
    backend: BackendKind,
    threads: u32,
    ws_gib: u64,
    hot_gib: u64,
    zipf: Option<f64>,
    write_only_gib: u64,
    warehouses: u32,
    load: f64,
    graph_scale: u32,
    iterations: u32,
    device: String,
    op: MemOp,
    pattern: Pattern,
    size: u64,
    exp: ExpArgs,
}

fn parse(mut raw: Vec<String>) -> (String, Opts) {
    if raw.is_empty() {
        usage();
    }
    let cmd = raw.remove(0);
    let mut o = Opts {
        backend: BackendKind::HeMem,
        threads: 16,
        ws_gib: 32,
        hot_gib: 0,
        zipf: None,
        write_only_gib: 0,
        warehouses: 64,
        load: 1.0,
        graph_scale: 24,
        iterations: 8,
        device: "nvm".into(),
        op: MemOp::Read,
        pattern: Pattern::Random,
        size: 256,
        exp: ExpArgs::default(),
    };
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--backend" => {
                o.backend = BackendKind::parse(&val()).unwrap_or_else(|| usage());
            }
            "--threads" => o.threads = val().parse().unwrap_or_else(|_| usage()),
            "--ws-gib" => o.ws_gib = val().parse().unwrap_or_else(|_| usage()),
            "--hot-gib" => o.hot_gib = val().parse().unwrap_or_else(|_| usage()),
            "--zipf" => o.zipf = Some(val().parse().unwrap_or_else(|_| usage())),
            "--write-only-gib" => o.write_only_gib = val().parse().unwrap_or_else(|_| usage()),
            "--warehouses" => o.warehouses = val().parse().unwrap_or_else(|_| usage()),
            "--load" => o.load = val().parse().unwrap_or_else(|_| usage()),
            "--graph-scale" => o.graph_scale = val().parse().unwrap_or_else(|_| usage()),
            "--iterations" => o.iterations = val().parse().unwrap_or_else(|_| usage()),
            "--device" => o.device = val(),
            "--op" => {
                o.op = match val().as_str() {
                    "read" => MemOp::Read,
                    "write" => MemOp::Write,
                    _ => usage(),
                }
            }
            "--pattern" => {
                o.pattern = match val().as_str() {
                    "seq" | "sequential" => Pattern::Sequential,
                    "random" | "rand" => Pattern::Random,
                    _ => usage(),
                }
            }
            "--size" => o.size = val().parse().unwrap_or_else(|_| usage()),
            "--full" => o.exp.scale = 1,
            "--scale" => o.exp.scale = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => o.exp.seed = val().parse().ok(),
            "--seconds" => o.exp.seconds = val().parse().ok(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    (cmd, o)
}

fn main() {
    let (cmd, o) = parse(std::env::args().skip(1).collect());
    let secs = o.exp.seconds.unwrap_or(6);
    match cmd.as_str() {
        "gups" => {
            let mut sim = o.exp.sim(o.backend);
            let mut cfg = GupsConfig::paper(o.ws_gib * GIB, o.hot_gib * GIB);
            cfg.threads = o.threads;
            cfg.zipf_theta = o.zipf;
            cfg.write_only_bytes = o.write_only_gib * GIB;
            cfg.warmup = Ns::secs(secs * 3);
            cfg.duration = Ns::secs(secs);
            let mut g = Gups::setup(&mut sim, cfg);
            let r = g.run(&mut sim);
            let mut rep = Report::new(
                "workbench_gups",
                &format!(
                    "GUPS on {} ({} GiB WS, {} GiB hot)",
                    o.backend.label(),
                    o.ws_gib,
                    o.hot_gib
                ),
                &[
                    "GUPS",
                    "updates",
                    "migrations",
                    "NVM written (GiB)",
                    "wp stalls",
                ],
            );
            rep.row(&[
                format!("{:.4}", r.gups),
                r.updates.to_string(),
                sim.m.stats.migrations_done.to_string(),
                f3(r.nvm_writes as f64 / GIB as f64),
                sim.m.stats.wp_stalls.to_string(),
            ]);
            rep.emit();
        }
        "silo" => {
            let mut sim = o.exp.sim(o.backend);
            let mut cfg = SiloConfig::paper(o.warehouses);
            cfg.threads = o.threads;
            cfg.warmup = Ns::secs(secs);
            cfg.duration = Ns::secs(secs);
            let r = run_silo(&mut sim, cfg);
            let mut rep = Report::new(
                "workbench_silo",
                &format!(
                    "Silo TPC-C on {} ({} warehouses)",
                    o.backend.label(),
                    o.warehouses
                ),
                &["txn/s", "txns", "migrations"],
            );
            rep.row(&[
                format!("{:.0}", r.tps),
                r.txns.to_string(),
                sim.m.stats.migrations_done.to_string(),
            ]);
            rep.emit();
        }
        "kvs" => {
            let mut sim = o.exp.sim(o.backend);
            let mut cfg = KvsConfig::paper(o.ws_gib * GIB);
            cfg.threads = o.threads.min(16);
            cfg.load = o.load;
            cfg.warmup = Ns::secs(secs * 2);
            cfg.duration = Ns::secs(secs);
            let r = run_kvs(&mut sim, cfg);
            let mut rep = Report::new(
                "workbench_kvs",
                &format!(
                    "FlexKVS on {} ({} GiB, load {})",
                    o.backend.label(),
                    o.ws_gib,
                    o.load
                ),
                &["Mops/s", "50p (us)", "90p (us)", "99p (us)", "99.9p (us)"],
            );
            rep.row(&[
                format!("{:.3}", r.ops_per_sec / 1e6),
                format!("{:.1}", r.latency_us(0.5)),
                format!("{:.1}", r.latency_us(0.9)),
                format!("{:.1}", r.latency_us(0.99)),
                format!("{:.1}", r.latency_us(0.999)),
            ]);
            rep.emit();
        }
        "bc" => {
            let mut sim = o.exp.sim(o.backend);
            let mut cfg = GraphConfig::paper(o.graph_scale);
            cfg.threads = o.threads;
            cfg.iterations = o.iterations;
            let bc = Bc::setup(&mut sim, cfg);
            sim.advance(Ns::secs(1));
            let r = bc.run(&mut sim);
            let mut rep = Report::new(
                "workbench_bc",
                &format!("BC on {} (2^{} vertices)", o.backend.label(), o.graph_scale),
                &["iteration", "runtime (s)", "NVM written (MiB)"],
            );
            for (i, it) in r.iterations.iter().enumerate() {
                rep.row(&[
                    (i + 1).to_string(),
                    format!("{:.3}", it.runtime.as_secs_f64()),
                    (it.nvm_writes >> 20).to_string(),
                ]);
            }
            rep.emit();
        }
        "stream" => {
            let dev = match o.device.as_str() {
                "dram" => DeviceConfig::ddr4_dram(192 * GIB),
                "nvm" => DeviceConfig::optane_dc(768 * GIB),
                _ => usage(),
            };
            let mut cfg = StreamConfig::paper_default(dev, o.threads, o.op, o.pattern);
            cfg.access_size = o.size;
            let r = run_stream(&cfg);
            let mut rep = Report::new(
                "workbench_stream",
                &format!(
                    "{} {:?} {:?} x{} @ {}B",
                    o.device, o.op, o.pattern, o.threads, o.size
                ),
                &["GB/s", "accesses"],
            );
            rep.row(&[f3(r.gb_per_sec()), r.accesses.to_string()]);
            rep.emit();
        }
        _ => usage(),
    }
}
