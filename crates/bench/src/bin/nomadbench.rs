//! Non-exclusive tiering gate: clean NVM shadow pages must turn
//! demotion-heavy churn into zero-copy remaps without regressing the
//! fault tail, and the feature flag must be a perfect no-op when off.
//!
//! Gates:
//!
//! (a) **Zero-copy demotion wins** — a demotion-heavy oversubscribed
//!     GUPS-style churn (a drifting read-mostly hot set at 3x DRAM
//!     oversubscription) runs twice on the same seed: exclusive tiering
//!     vs `nvm_shadows`. The shadowed run must demote a nonzero number
//!     of pages by remap alone (zero bytes on the copy engines), cut
//!     total journaled migration bytes by >= 30%, and hold the
//!     major-fault p99 no worse than the exclusive run.
//! (b) **Shadows-off byte-identity** — with `nvm_shadows` off (the
//!     default), the tierbench gate (a) configuration must reproduce the
//!     committed pre-PR baselines byte for byte
//!     (`results/tierbench_2tier_baseline.txt` /
//!     `results/tierbench_2tier_telemetry.csv`): the feature must be
//!     invisible until switched on.
//! (c) **Kill-replay determinism** — the shadowed churn with a seeded
//!     manager kill (journal recovery + shadow reconcile) and with a
//!     seeded tenant kill (drain) replays byte-identically, shadow
//!     counters included, and the post-recovery audit is silent.
//!
//! The ablation table (`results/nomadbench.csv`) reports the shadow
//! capacity tax (NVM frames parked as shadows) against the migration
//! bandwidth saved, per write intensity.

use std::path::Path;

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_bench::{
    assert_silent_audit, f3, fingerprint, record_wallclock, write_results, ExpArgs, Report,
};
use hemem_core::backend::AccessBatch;
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::telemetry::Telemetry;
use hemem_sim::{LatencyClass, Ns, TenantKill};
use hemem_vmm::RegionId;
use hemem_workloads::{Gups, GupsConfig};

/// Machine scale divisor for every gate (2 GiB DRAM + 8 GiB NVM).
const SCALE: u64 = 96;

/// Fixed args for the gate runs: CLI flags must not move the baseline.
fn gate_args() -> ExpArgs {
    ExpArgs {
        scale: SCALE,
        ..ExpArgs::default()
    }
}

/// Pages per churn span and accesses per batch: narrow, hot spans build
/// PEBS heat fast enough that the drifting set keeps the promotion and
/// demotion machinery saturated.
const SPAN_PAGES: u64 = 64;
const BATCH_OPS: u64 = 600_000;
const ROUNDS: u64 = 60;
const STRIDE: u64 = 96;
const WARM_MS: u64 = 2_000;

/// The demotion-heavy machine: 1 GiB DRAM + 2 GiB NVM with a 2.5 GiB
/// region — 2.5x DRAM oversubscription, everything still
/// byte-addressable, so watermark churn is pure NVM<->DRAM migration
/// traffic and every demotion is a candidate for the zero-copy remap.
fn churn_machine(shadows: bool) -> MachineConfig {
    let mut mc = MachineConfig::small(1, 2);
    mc.seed = 0x004E_4F4D_4144; // "NOMAD"
    if shadows {
        mc = mc.with_shadows();
    }
    mc
}

/// One measured churn run. The hot set (two `SPAN_PAGES` spans) drifts
/// every round: newly hot NVM pages promote, last round's promotions
/// cool and are demoted to make room — exactly the watermark churn the
/// shadow remap path is built for. `write_frac` sets how often a
/// promoted page dirties before it is demoted.
struct ChurnOutcome {
    sim: Sim<AnyBackend>,
    accesses: u64,
    sim_ns: u64,
}

fn churn_run(mc: MachineConfig, write_frac: f64) -> ChurnOutcome {
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let region_bytes = 2 * sim.m.cfg.dram.capacity + sim.m.cfg.dram.capacity / 2;
    let region = sim.mmap(region_bytes);
    sim.populate(region, true);
    sim.run_until(Ns::millis(WARM_MS));
    let start = sim.now();
    let pages = region_bytes / sim.m.cfg.managed_page.bytes();
    let span = pages - 300;
    let mut accesses = 0u64;
    for round in 0..ROUNDS {
        for base in [(round * STRIDE) % span, ((round * STRIDE) + 640) % span] {
            // A seeded tenant kill (gate c) unmaps the region mid-churn;
            // the remaining schedule just advances time.
            if !sim.m.space.regions().any(|r| r.id() == region) {
                sim.advance(Ns::millis(50));
                continue;
            }
            let hi = (base + SPAN_PAGES).min(pages);
            let batch =
                AccessBatch::uniform(region, base, hi, BATCH_OPS, 8, write_frac, region_bytes);
            sim.submit_batch(0, &batch);
            accesses += BATCH_OPS;
            loop {
                match sim.step() {
                    Some((_, Event::ThreadReady(_))) | None => break,
                    Some(_) => {}
                }
            }
            sim.advance(Ns::millis(50));
        }
    }
    sim.advance(Ns::secs(1));
    let sim_ns = sim.now().saturating_sub(start).as_nanos();
    ChurnOutcome {
        sim,
        accesses,
        sim_ns,
    }
}

/// The kill-replay variant of the churn for gate (c): the same drifting
/// schedule with a seeded manager or tenant kill landing mid-churn.
fn killed_churn_fingerprint(manager: bool) -> String {
    let mut mc = churn_machine(true);
    let at = Ns::millis(WARM_MS + 400);
    if manager {
        mc.chaos.manager_kill_at = vec![at];
    } else {
        mc.chaos.tenant_kill_at = vec![TenantKill { tenant: 0, at }];
    }
    let mut out = churn_run(mc, 0.2);
    assert_silent_audit(&mut out.sim, "gate (c) kill recovery");
    format!(
        "{}|{:?}|{:?}|{}",
        fingerprint(&out.sim),
        out.sim.m.shadow,
        out.sim.m.recovery,
        out.sim.m.nvm_pool.shadow_held_pages(),
    )
}

/// Replays the frozen tierbench gate (a) runs with the (default)
/// shadows-off config and checks them against the committed pre-PR
/// baselines. Byte drift here means the feature is not a no-op when off.
fn gate_shadows_off_identity() {
    let args = gate_args();
    let mut cfg = GupsConfig::paper(args.gib(256), args.gib(16));
    cfg.warmup = Ns::secs(2);
    cfg.duration = Ns::secs(2);
    let mc = args.machine();
    assert!(!mc.nvm_shadows, "shadows must default off");
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let mut gups = Gups::setup(&mut sim, cfg);
    let _ = gups.run(&mut sim);
    let fp = format!("{}\n", fingerprint(&sim));
    compare_baseline("tierbench_2tier_baseline.txt", &fp, "2-tier fingerprint");

    let mc = args.machine();
    let backend = BackendKind::HeMem.build(&mc);
    let mut sim = Sim::new(mc, backend);
    let id: RegionId = sim.mmap(2 * sim.m.cfg.dram.capacity);
    sim.populate(id, true);
    let mut t = Telemetry::new(id, Ns::millis(50));
    for _ in 0..30 {
        t.maybe_sample(&sim);
        sim.advance(Ns::millis(50));
    }
    t.maybe_sample(&sim);
    compare_baseline(
        "tierbench_2tier_telemetry.csv",
        &t.csv(),
        "2-tier telemetry",
    );
}

/// Compares `contents` against the committed tierbench baseline —
/// nomadbench never seeds these files; they must already exist (they are
/// the *pre-PR* capture) and must match exactly.
fn compare_baseline(filename: &str, contents: &str, what: &str) {
    let path = Path::new("results").join(filename);
    let baseline = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("gate (b) needs committed baseline {}: {e}", path.display()));
    assert_eq!(
        baseline,
        contents,
        "gate (b) failed: shadows-off {what} drifted from committed baseline {}",
        path.display()
    );
    println!(
        "gate (b): shadows-off {what} byte-identical to {}",
        path.display()
    );
}

fn main() {
    let _args = ExpArgs::parse(); // accepted for CLI uniformity; gates are fixed
    let wall = std::time::Instant::now();
    let mut sim_secs = 0.0f64;

    // Gate (a): exclusive vs shadowed tiering on the same churn.
    let excl = churn_run(churn_machine(false), 0.1);
    let shad = churn_run(churn_machine(true), 0.1);
    sim_secs += (excl.sim_ns + shad.sim_ns) as f64 / 1e9 + 2.0 * (WARM_MS as f64 / 1e3);
    assert_eq!(
        excl.sim.m.shadow.remap_demotions, 0,
        "exclusive run must not remap-demote"
    );
    let remaps = shad.sim.m.shadow.remap_demotions;
    assert!(
        remaps > 0,
        "gate (a) failed: shadowed run produced no zero-copy demotions"
    );
    let excl_bytes = excl.sim.m.stats.migrated_bytes;
    let shad_bytes = shad.sim.m.stats.migrated_bytes;
    assert!(
        shad_bytes * 10 <= excl_bytes * 7,
        "gate (a) failed: journaled migration bytes {shad_bytes} not >=30% below exclusive {excl_bytes}"
    );
    let p99 = |s: &Sim<AnyBackend>| s.m.trace.hist(LatencyClass::MajorFault).quantile(0.99);
    let (excl_p99, shad_p99) = (p99(&excl.sim), p99(&shad.sim));
    assert!(
        shad_p99 <= excl_p99,
        "gate (a) failed: shadowed major-fault p99 {shad_p99} ns worse than exclusive {excl_p99} ns"
    );
    println!(
        "gate (a): {remaps} zero-copy demotions ({} moved by remap), journaled bytes {} vs {} exclusive ({}% saved), major p99 {} vs {} ns",
        shad.sim.m.shadow.remap_demoted_bytes,
        shad_bytes,
        excl_bytes,
        (excl_bytes - shad_bytes) * 100 / excl_bytes.max(1),
        shad_p99,
        excl_p99
    );

    // Gate (b): the feature flag off is byte-invisible.
    gate_shadows_off_identity();
    sim_secs += 4.0 + 1.5;

    // Gate (c): seeded kills replay byte-identically with a silent audit.
    for (label, manager) in [("manager", true), ("tenant", false)] {
        let fp1 = killed_churn_fingerprint(manager);
        let fp2 = killed_churn_fingerprint(manager);
        assert_eq!(
            fp1, fp2,
            "gate (c) failed: shadowed {label}-kill churn replay diverged"
        );
        println!("gate (c): {label}-kill replay byte-identical, audit silent");
        sim_secs += 2.0 * 8.0;
    }

    // Ablation: shadow capacity tax vs bandwidth saved across write
    // intensity. Each row pairs an exclusive and a shadowed run at one
    // write fraction; the tax is the NVM frames still parked as shadows
    // at the end, the saving is the journaled-byte delta.
    let mut rep = Report::new(
        "nomadbench",
        "Non-exclusive tiering: zero-copy demotion vs exclusive copies",
        &[
            "write_frac",
            "remap demotions",
            "remap bytes",
            "journaled bytes (shadow)",
            "journaled bytes (excl)",
            "bytes saved %",
            "shadow frames held",
            "shadows retained",
            "store invalidations",
            "major p99 ns (shadow)",
            "major p99 ns (excl)",
            "accesses/s (shadow)",
            "accesses/s (excl)",
        ],
    );
    let mut csv = String::from(
        "write_frac,remap_demotions,remap_bytes,journaled_bytes_shadow,journaled_bytes_excl,\
         bytes_saved_pct,shadow_frames_held,shadows_retained,store_invalidations,\
         major_p99_ns_shadow,major_p99_ns_excl,rate_shadow,rate_excl\n",
    );
    for wf in [0.0, 0.1, 0.3, 0.6] {
        let e = churn_run(churn_machine(false), wf);
        let s = churn_run(churn_machine(true), wf);
        sim_secs += (e.sim_ns + s.sim_ns) as f64 / 1e9 + 2.0 * (WARM_MS as f64 / 1e3);
        let saved_pct =
            (e.sim.m.stats.migrated_bytes as i128 - s.sim.m.stats.migrated_bytes as i128) * 100
                / e.sim.m.stats.migrated_bytes.max(1) as i128;
        let rate = |o: &ChurnOutcome| o.accesses as f64 / (o.sim_ns as f64 / 1e9).max(1e-9);
        let row = [
            format!("{wf:.1}"),
            s.sim.m.shadow.remap_demotions.to_string(),
            s.sim.m.shadow.remap_demoted_bytes.to_string(),
            s.sim.m.stats.migrated_bytes.to_string(),
            e.sim.m.stats.migrated_bytes.to_string(),
            saved_pct.to_string(),
            s.sim.m.nvm_pool.shadow_held_pages().to_string(),
            s.sim.m.shadow.retained.to_string(),
            s.sim.m.shadow.invalidated_store.to_string(),
            p99(&s.sim).to_string(),
            p99(&e.sim).to_string(),
            f3(rate(&s)),
            f3(rate(&e)),
        ];
        csv.push_str(&row.join(","));
        csv.push('\n');
        rep.row(&row);
    }
    rep.emit();
    write_results("nomadbench.csv", &csv, "nomadbench ablation");

    record_wallclock("nomadbench", wall.elapsed().as_secs_f64(), sim_secs);
}
