//! Table 4: FlexKVS latency with priority — a pinned high-priority
//! instance (16 GB) beside a regular instance (500 GB, uniform access),
//! under HeMem and Memory Mode.
//!
//! Paper shape: HeMem gives the priority instance up to 47% better median
//! and 16% better p99 than MM, with no tangible impact on the regular
//! instance; MM cannot prioritize.

use hemem_baselines::{AnyBackend, BackendKind};
use hemem_bench::{ExpArgs, Report};
use hemem_core::runtime::Event;
use hemem_sim::{Histogram, Ns};
use hemem_workloads::{Kvs, KvsConfig, TierRho};

struct Instance {
    kvs: Kvs,
    latency: Histogram,
    tid_base: u32,
    threads: u32,
}

fn run_pair(args: &ExpArgs, kind: BackendKind) -> (Histogram, Histogram) {
    let mut sim = args.sim(kind);
    // Priority instance: 16 GB hot-skewed store, pinned under HeMem.
    if let AnyBackend::HeMem(h) = &mut sim.backend {
        h.set_priority(true);
    }
    let mut pcfg = KvsConfig::paper(args.gib(16));
    pcfg.threads = 4;
    pcfg.load = 0.5;
    let prio = Kvs::setup(&mut sim, pcfg);
    if let AnyBackend::HeMem(h) = &mut sim.backend {
        h.set_priority(false);
    }
    // Regular instance: 500 GB uniform-access store.
    let mut rcfg = KvsConfig::paper(args.gib(500));
    rcfg.threads = 8;
    rcfg.hot_keys = 0.0; // uniform
    let regular = Kvs::setup(&mut sim, rcfg);

    let warm = Ns::secs(args.seconds.unwrap_or(5));
    let dur = Ns::secs(args.seconds.unwrap_or(5));
    let mut instances = [
        Instance {
            kvs: prio,
            latency: Histogram::new(),
            tid_base: 0,
            threads: 4,
        },
        Instance {
            kvs: regular,
            latency: Histogram::new(),
            tid_base: 4,
            threads: 8,
        },
    ];
    let total_threads: u32 = instances.iter().map(|i| i.threads).sum();
    sim.set_app_threads(total_threads);
    for tid in 0..total_threads {
        sim.schedule_thread(sim.now(), tid);
    }
    let warm_end = sim.now() + warm;
    let t_end = warm_end + dur;
    let mut remaining = vec![1u32; total_threads as usize];
    let mut live = total_threads;
    let mut rho = TierRho::default();
    let mut last = (Ns::ZERO, Ns::ZERO, Ns::ZERO);
    while live > 0 {
        let Some((now, ev)) = sim.step() else { break };
        let Event::ThreadReady(tid) = ev else {
            continue;
        };
        let t = tid as usize;
        remaining[t] = remaining[t].saturating_sub(1);
        if remaining[t] > 0 {
            continue;
        }
        rho.refresh(&sim, &mut last);
        if now >= t_end {
            live -= 1;
            continue;
        }
        let inst = if tid < instances[1].tid_base { 0 } else { 1 };
        if now > warm_end {
            for _ in 0..8 {
                let is_get = sim.m.rng.bernoulli(instances[inst].kvs.config().get_ratio);
                let l = instances[inst].kvs.sample_latency(&mut sim, is_get, &rho);
                instances[inst].latency.record_ns(l);
            }
        }
        let (v, h) = instances[inst].kvs.batches();
        sim.submit_batch(tid, &v);
        sim.submit_batch(tid, &h);
        remaining[t] = 2;
    }
    let [p, r] = instances;
    (p.latency, r.latency)
}

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "table4",
        "Table 4: FlexKVS latency with priority (us)",
        &[
            "system",
            "prio 50p",
            "prio 99p",
            "prio 99.9p",
            "reg 50p",
            "reg 99p",
            "reg 99.9p",
        ],
    );
    for kind in args.backends_or(&[BackendKind::HeMem, BackendKind::MemoryMode]) {
        let (p, r) = run_pair(&args, kind);
        let q = |h: &Histogram, q: f64| format!("{:.1}", h.quantile(q) as f64 / 1e3);
        rep.row(&[
            kind.label().to_string(),
            q(&p, 0.5),
            q(&p, 0.99),
            q(&p, 0.999),
            q(&r, 0.5),
            q(&r, 0.99),
            q(&r, 0.999),
        ]);
    }
    rep.emit();
}
