//! Ablation: small-allocation DRAM bypass (DESIGN.md §4).
//!
//! HeMem forwards small allocations to the kernel so ephemeral structures
//! stay in DRAM; X-Mem-style managers place everything in the tiered pool.
//! A Silo run with its small, write-hot redo log shows the difference.

use hemem_baselines::StaticTier;
use hemem_bench::{ExpArgs, Report};
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::runtime::Sim;
use hemem_sim::Ns;
use hemem_workloads::{run_silo, SiloConfig};

fn main() {
    let args = ExpArgs::parse();
    let mut rep = Report::new(
        "ablate_smallalloc",
        "Ablation: small allocations bypass tiering",
        &["configuration", "txn/s"],
    );
    let wh = ((864 / args.scale).max(2)) as u32;
    let mut cfg = SiloConfig::paper(wh);
    cfg.warmup = Ns::secs(args.seconds.unwrap_or(4));
    cfg.duration = Ns::secs(args.seconds.unwrap_or(4));
    // HeMem: log (256 MiB) is below the manage threshold -> kernel DRAM.
    let mc = args.machine();
    let hc = HeMemConfig::scaled_for(&mc);
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let r = run_silo(&mut sim, cfg.clone());
    rep.row(&[
        "small allocs bypass (HeMem)".to_string(),
        format!("{:.0}", r.tps),
    ]);
    // X-Mem with threshold 0: everything, including the log, goes to NVM.
    let mc = args.machine();
    let mut sim = Sim::new(mc, StaticTier::xmem_with_threshold(0));
    let r = run_silo(&mut sim, cfg);
    rep.row(&[
        "everything tiered to NVM (X-Mem, no bypass)".to_string(),
        format!("{:.0}", r.tps),
    ]);
    rep.emit();
}
