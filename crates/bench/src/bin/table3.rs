//! Table 3: FlexKVS throughput (Mops/s) at 16/128/700 GB working sets and
//! latency percentiles at the 700 GB point (30% load).
//!
//! Paper shape: all systems comparable while the set fits in DRAM; at
//! 700 GB HeMem leads MM/Nimble by ~14-15% and all-NVM by ~18%, with 75%
//! / 28% better median / p90 latency than MM.

use hemem_baselines::BackendKind;
use hemem_bench::{ExpArgs, Report};
use hemem_sim::Ns;
use hemem_workloads::{run_kvs, KvsConfig};

fn main() {
    let args = ExpArgs::parse();
    let backends = args.backends_or(&[
        BackendKind::MemoryMode,
        BackendKind::HeMem,
        BackendKind::Nimble,
        BackendKind::NvmOnly,
    ]);
    let sizes = [16u64, 128, 700];
    let mut headers = vec!["system".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s} GB (Mops/s)")));
    for p in ["50p", "90p", "99p", "99.9p"] {
        headers.push(format!("{p} (us, 700 GB @30% load)"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new("table3", "Table 3: FlexKVS throughput & latency", &hdr_refs);
    for &kind in &backends {
        let mut cells = vec![kind.label().to_string()];
        for &gb in &sizes {
            let mut sim = args.sim(kind);
            let mut cfg = KvsConfig::paper(args.gib(gb));
            cfg.warmup = Ns::secs(30 + gb / 4);
            cfg.duration = Ns::secs(args.seconds.unwrap_or(8));
            let r = run_kvs(&mut sim, cfg);
            cells.push(format!("{:.3}", r.ops_per_sec / 1e6));
        }
        // Latency run: 700 GB working set at 30% load.
        let mut sim = args.sim(kind);
        let mut cfg = KvsConfig::paper(args.gib(700));
        cfg.load = 0.3;
        cfg.warmup = Ns::secs(120);
        cfg.duration = Ns::secs(args.seconds.unwrap_or(8));
        let r = run_kvs(&mut sim, cfg);
        for q in [0.5, 0.9, 0.99, 0.999] {
            cells.push(format!("{:.1}", r.latency_us(q)));
        }
        rep.row(&cells);
    }
    rep.emit();
}
