//! Shared runner for the betweenness-centrality figures (14 and 15).

use hemem_baselines::BackendKind;
use hemem_sim::Ns;
use hemem_workloads::{Bc, GraphConfig};

use crate::{ExpArgs, Report};

/// Runs BC at `scale` across `backends`, reporting per-iteration runtimes.
pub fn run_bc(args: &ExpArgs, scale: u32, name: &str, title: &str, backends: &[BackendKind]) {
    let backends = args.backends_or(backends);
    let mut series = Vec::new();
    for &kind in &backends {
        let mut sim = args.sim(kind);
        let mut cfg = GraphConfig::paper(scale);
        cfg.iterations = 15;
        let bc = Bc::setup(&mut sim, cfg);
        sim.advance(Ns::secs(1));
        let res = bc.run(&mut sim);
        series.push((kind.label(), res));
    }
    let mut headers = vec!["iteration".to_string()];
    headers.extend(series.iter().map(|(l, _)| format!("{l} (s)")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new(name, title, &hdr_refs);
    let n = series
        .iter()
        .map(|(_, r)| r.iterations.len())
        .min()
        .unwrap_or(0);
    for i in 0..n {
        let mut cells = vec![(i + 1).to_string()];
        for (_, r) in &series {
            cells.push(format!("{:.3}", r.iterations[i].runtime.as_secs_f64()));
        }
        rep.row(&cells);
    }
    rep.emit();
}
