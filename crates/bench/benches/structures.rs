//! Microbenchmarks of the core data structures on HeMem's hot paths: the
//! page FIFO queues (every PEBS sample may move a page), the Fenwick
//! residency index (every batch queries it), the access ledger, the HDR
//! histogram, the sampled direct-mapped cache, and the PEBS buffer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hemem_memdev::{DramCache, DramCacheConfig};
use hemem_pebs::{Pebs, PebsConfig, SampleRecord, SampleType};
use hemem_sim::list::{FifoArena, FifoList};
use hemem_sim::{Histogram, Rng, Zipf};
use hemem_vmm::fenwick::FlagTree;
use hemem_vmm::AccessLedger;

fn bench_fifo(c: &mut Criterion) {
    c.bench_function("fifo/push_pop_cycle", |b| {
        let mut arena = FifoArena::new(4096);
        let mut list = FifoList::new(0);
        for s in 0..4096 {
            list.push_back(&mut arena, s);
        }
        b.iter(|| {
            let s = list.pop_front(&mut arena).expect("nonempty");
            list.push_back(&mut arena, s);
            black_box(s)
        });
    });
    c.bench_function("fifo/remove_middle_reinsert", |b| {
        let mut arena = FifoArena::new(4096);
        let mut list = FifoList::new(0);
        for s in 0..4096 {
            list.push_back(&mut arena, s);
        }
        let mut i = 0u32;
        b.iter(|| {
            let s = (i * 2654435761) % 4096;
            i = i.wrapping_add(1);
            list.remove(&mut arena, s);
            list.push_front(&mut arena, s);
        });
    });
}

fn bench_fenwick(c: &mut Criterion) {
    c.bench_function("fenwick/set_and_range", |b| {
        let mut t = FlagTree::new(262_144);
        let mut rng = Rng::new(1);
        b.iter(|| {
            let i = rng.gen_range(262_144) as usize;
            t.set(i, !t.get(i));
            black_box(t.count_range(1000, 200_000))
        });
    });
}

fn bench_ledger(c: &mut Criterion) {
    c.bench_function("ledger/add_segments_clear", |b| {
        b.iter_batched(
            AccessLedger::new,
            |mut l| {
                for i in 0..32 {
                    l.add(i * 100, i * 100 + 100, 1000.0, 500.0);
                }
                black_box(l.segments().len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let mut h = Histogram::new();
        let mut rng = Rng::new(2);
        b.iter(|| h.record(rng.gen_range(10_000_000)));
    });
    c.bench_function("histogram/quantile", |b| {
        let mut h = Histogram::new();
        let mut rng = Rng::new(3);
        for _ in 0..100_000 {
            h.record(rng.gen_range(10_000_000));
        }
        b.iter(|| black_box(h.quantile(0.999)));
    });
}

fn bench_dram_cache(c: &mut Criterion) {
    c.bench_function("dramcache/access", |b| {
        let mut cache = DramCache::new(DramCacheConfig {
            dram_bytes: 1 << 30,
            line_size: 64,
            sample_shift: 4,
        });
        let mut rng = Rng::new(4);
        b.iter(|| {
            let addr = rng.gen_range(8 << 30);
            black_box(cache.access(addr, addr & 1 == 0))
        });
    });
}

fn bench_pebs(c: &mut Criterion) {
    c.bench_function("pebs/event_push_drain", |b| {
        let mut p = Pebs::new(PebsConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            let fired = p.events(SampleType::Store, 10_000);
            for _ in 0..fired {
                addr = addr.wrapping_add(4096);
                p.push(SampleRecord {
                    vaddr: addr,
                    kind: SampleType::Store,
                });
            }
            black_box(p.drain(64).len())
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf/sample", |b| {
        let z = Zipf::new(1 << 24, 0.99);
        let mut rng = Rng::new(5);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_fifo,
    bench_fenwick,
    bench_ledger,
    bench_histogram,
    bench_dram_cache,
    bench_pebs,
    bench_zipf
);
criterion_main!(benches);
