//! Benchmarks of HeMem's control-plane hot paths: PEBS-sample
//! classification into the tracker, one policy pass, and a full
//! page-table scan-and-classify pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hemem_baselines::scan_and_classify;
use hemem_core::hemem::{run_policy, PageTracker, PolicyConfig, TrackerConfig};
use hemem_core::machine::{MachineConfig, MachineCore};
use hemem_sim::{Ns, Rng};
use hemem_vmm::{PageId, RegionKind, Tier};

fn setup(pages: u64) -> (MachineCore, PageTracker, hemem_vmm::RegionId) {
    let mut m = MachineCore::new(MachineConfig::small(16, 64));
    let ps = m.cfg.managed_page;
    let id = m
        .space
        .mmap(pages * ps.bytes(), ps, RegionKind::ManagedHeap);
    let mut t = PageTracker::new(TrackerConfig::default());
    t.add_region(id, pages);
    for i in 0..pages {
        let tier = if i % 3 == 0 { Tier::Dram } else { Tier::Nvm };
        let phys = m.pool_mut(tier).alloc().expect("capacity");
        m.space.region_mut(id).map_page(i, tier, phys);
        t.placed(
            PageId {
                region: id,
                index: i,
            },
            tier,
        );
    }
    (m, t, id)
}

fn bench_record(c: &mut Criterion) {
    c.bench_function("tracker/record_sample", |b| {
        let (_m, mut t, id) = setup(4096);
        let mut rng = Rng::new(7);
        b.iter(|| {
            let page = PageId {
                region: id,
                index: rng.gen_range(4096),
            };
            t.record(page, rng.bernoulli(0.5), Ns::secs(1));
        });
    });
}

fn bench_policy(c: &mut Criterion) {
    c.bench_function("policy/pass_with_hot_pages", |b| {
        let (mut m, mut t, id) = setup(4096);
        let cfg = PolicyConfig::default();
        for i in 2000..2100 {
            for _ in 0..8 {
                t.record(
                    PageId {
                        region: id,
                        index: i,
                    },
                    false,
                    Ns::secs(1),
                );
            }
        }
        b.iter(|| {
            let jobs = run_policy(&cfg, &mut t, &mut m, Ns::secs(2));
            // Restore popped pages so each iteration sees similar state.
            for j in &jobs {
                t.restore(j.page);
            }
            black_box(jobs.len())
        });
    });
}

fn bench_scan(c: &mut Criterion) {
    c.bench_function("scan/classify_16k_pages", |b| {
        let (mut m, mut t, id) = setup(16_384);
        b.iter(|| {
            m.space.region_mut(id).ledger.add(0, 16_384, 1e6, 1e5);
            black_box(scan_and_classify(&mut m, &mut t, Ns::secs(1), true).marked_hot)
        });
    });
}

criterion_group!(benches, bench_record, bench_policy, bench_scan);
criterion_main!(benches);
