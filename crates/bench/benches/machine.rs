//! End-to-end simulation throughput: batches per second through the full
//! machine (translation, LLC, tier split, device reservation, PEBS), page
//! population, and a migration round trip.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hemem_core::backend::AccessBatch;
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_memdev::GIB;

fn machine() -> Sim<HeMem> {
    let mc = MachineConfig::small(2, 8);
    let hc = HeMemConfig::scaled_for(&mc);
    Sim::new(mc, HeMem::new(hc))
}

fn bench_submit(c: &mut Criterion) {
    c.bench_function("sim/submit_batch_200k", |b| {
        let mut sim = machine();
        let id = sim.mmap(4 * GIB);
        sim.populate(id, true);
        let batch = AccessBatch::uniform(id, 0, 2048, 200_000, 8, 0.5, 4 * GIB);
        b.iter(|| {
            sim.submit_batch(0, &batch);
            while let Some((_, ev)) = sim.step() {
                if matches!(ev, Event::ThreadReady(_)) {
                    break;
                }
            }
            black_box(sim.now())
        });
    });
}

fn bench_populate(c: &mut Criterion) {
    c.bench_function("sim/populate_1gib", |b| {
        b.iter_batched(
            machine,
            |mut sim| {
                let id = sim.mmap(GIB);
                black_box(sim.populate(id, true))
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_submit, bench_populate);
criterion_main!(benches);
