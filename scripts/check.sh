#!/usr/bin/env bash
# Local mirror of CI: build, test, lint, chaos + recovery smoke. Run
# from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

# N-tier hygiene: placement, audit, and quota machinery must iterate
# the machine's tier vector, never a hardcoded DRAM/NVM pair — and
# tenant-aware code must thread the real tenant id, never the solo
# slot's `TenantId(0)`. The only allowed literals live in the tier
# table / solo-compat shim (vmm/src/addr.rs); #[cfg(test)] modules
# (which sit at the bottom of each file) are exempt, so scanning stops
# at the first cfg(test) marker.
echo "== tier-literal gate"
bad=$(find crates -name '*.rs' -path '*/src/*' ! -path '*/vmm/src/addr.rs' -print0 \
  | xargs -0 -n1 awk '/#\[cfg\(test\)\]/{exit} {print FILENAME ":" FNR ": " $0}' \
  | grep -E '\[Tier::Dram, *Tier::Nvm\]|\[Tier::Nvm, *Tier::Dram\]|TenantId\(0\)' || true)
if [ -n "$bad" ]; then
  echo "hardcoded tier-pair or TenantId(0) literal outside vmm/src/addr.rs:"
  echo "$bad"
  exit 1
fi

# --workspace everywhere: the root package is the only default member,
# so bare cargo commands would skip the other crates.
echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== chaos smoke"
cargo build --release -p hemem-bench --bin chaosbench
./target/release/chaosbench --scale 96 --seconds 4

# crashbench asserts internally that every kill schedule recovers,
# audits clean, completes, and replays byte-identically; a violation
# aborts the run and fails this step.
echo "== recovery smoke"
cargo build --release -p hemem-bench --bin crashbench
./target/release/crashbench --seed 7 --scale 96 --seconds 3

# obsbench asserts internally that a traced GUPS run is byte-identical
# to an untraced one, that the exported Chrome-trace JSON parses with
# monotone timestamps and matched span begin/ends, and that migration,
# fault, policy-pass, and PEBS events all appear.
echo "== observability smoke"
cargo build --release -p hemem-bench --bin obsbench
./target/release/obsbench --scale 96 --seconds 1

# colobench asserts internally that a one-tenant run under the arbiter
# is byte-identical to the single-process manager, that the two-tenant
# mix replays byte-identically, that every run passes the tenant-scoped
# audit, and that greedy arbitration strictly beats static equal shares
# on the hot + cold mix.
echo "== colocation smoke"
cargo build --release -p hemem-bench --bin colobench
./target/release/colobench --scale 96 --seconds 3

# tierbench asserts internally that (a) the 2-tier machine is
# byte-identical to the committed pre-SSD baseline, (b) the managed
# 3-tier policy beats spill-at-allocation under 1.5x oversubscription,
# and (c) 3-tier runs (plain and with seeded SSD faults) replay
# byte-identically.
echo "== tier-3 smoke"
cargo build --release -p hemem-bench --bin tierbench
./target/release/tierbench

# churnbench asserts internally that (a) the seeded arrival/kill/balloon
# schedule replays byte-identically under a media+PEBS storm, (b) every
# kill drains to zero frames with the quota returned and the audit
# silent, (c) a storm-afflicted neighbor cannot push the surviving
# anchor's major-fault p99 past 2x the storm-free run (and the
# per-tenant circuit breaker actually trips), and (d) tracing the
# lifecycle instants leaves the run byte-identical.
echo "== tenant churn smoke"
cargo build --release -p hemem-bench --bin churnbench
./target/release/churnbench

# failbench asserts internally that (a) seeded mid-run NVM and SSD
# failures replay byte-identically, (b) the failed tier drains to zero
# frames through the journaled evacuation with a silent audit and the
# survivors' major-fault p99 within 4x of the clean leg, (c) evacuating
# strictly beats abandoning the tier's contents on completed ops, and
# (d) tracing the health instants is byte-transparent.
echo "== tier failure smoke"
cargo build --release -p hemem-bench --bin failbench
./target/release/failbench

# nomadbench asserts internally that (a) non-exclusive tiering turns a
# demotion-heavy oversubscribed churn into zero-copy remaps (>= 30% of
# journaled migration bytes saved, major-fault p99 no worse), (b) the
# shadows-off config is byte-identical to the committed tierbench
# baselines, and (c) shadowed runs with seeded manager/tenant kills
# replay byte-identically with a silent audit.
echo "== non-exclusive tiering smoke"
cargo build --release -p hemem-bench --bin nomadbench
./target/release/nomadbench

# scalebench asserts internally that (a) the multi-grain region policy
# pass is sublinear across a 2-16 GiB footprint sweep while the flat
# per-page comparator grows ~linearly, (b) the adaptive PEBS controller
# holds the sample-drop fraction where the same fixed period blows the
# budget, (c) the regions-off config is byte-identical to the committed
# tierbench baselines, and (d) killed multi-grain+adaptive runs replay
# byte-identically with a silent audit.
echo "== footprint-scaling smoke"
cargo build --release -p hemem-bench --bin scalebench
./target/release/scalebench

# fleetbench asserts internally that (a) pooled spawn-to-first-touch
# p99 sits >= 5x below the from-scratch baseline with zero scratch
# spawns and most admissions landing on recycled slots, (b) a
# recycled-slot run is byte-identical (fingerprint + stream + telemetry
# CSV) to the same schedule on fresh slots, and (c) seeded mid-run slot
# kills replay byte-identically with a silent audit while the committed
# solo tierbench baseline stays untouched.
echo "== fleet churn smoke"
cargo build --release -p hemem-bench --bin fleetbench
./target/release/fleetbench

# Slot-pool hygiene: every tenant spawn must flow through the pool
# (claim + in-place reset), never construct a tracker ad hoc — the only
# PageTracker::new call sites in the managed layers live in
# core/src/fleet.rs. Baselines keep their own trackers and are exempt;
# comments and #[cfg(test)] modules are exempt by the same cutoffs as
# above.
echo "== pooled-spawn gate"
bad=$(find crates/core/src crates/workloads/src -name '*.rs' ! -name 'fleet.rs' -print0 \
  | xargs -0 -n1 awk '/#\[cfg\(test\)\]/{exit} /^[[:space:]]*\/\//{next} {print FILENAME ":" FNR ": " $0}' \
  | grep -F 'PageTracker::new' || true)
if [ -n "$bad" ]; then
  echo "tenant tracker built outside the slot pool (core/src/fleet.rs):"
  echo "$bad"
  exit 1
fi

# Region-granularity hygiene: the per-period policy pass must select
# work through the span indexes (regions.rs) — never a fresh flat
# per-page scan in the policy or manager layer. Crash-recovery and
# audit full scans live in tracker.rs and are exempt by file;
# #[cfg(test)] modules are exempt by the same cutoff as above.
echo "== flat-scan gate"
bad=$(for f in crates/core/src/hemem/policy.rs crates/core/src/hemem/manager.rs; do
    awk '/#\[cfg\(test\)\]/{exit} {print FILENAME ":" FNR ": " $0}' "$f"
  done | grep -E 'for [^ ]+ in 0\.\.pages|for [^ ]+ in 0\.\.[a-z_.]*pages\(\)|\.meta\.iter|0\.\.self\.meta\.len' || true)
if [ -n "$bad" ]; then
  echo "flat per-page policy scan outside regions.rs/tracker.rs:"
  echo "$bad"
  exit 1
fi

# Wall-clock regression gate: the gate benches above each rewrote their
# entry in BENCH_sim_wallclock.json. Compare against the committed
# baseline with a 3x tolerance — machine-to-machine variance is real,
# but an order-of-magnitude simulator slowdown is a bug. Benches with
# no committed entry yet are skipped.
echo "== sim wall-clock regression gate"
if git show HEAD:BENCH_sim_wallclock.json >target/wallclock_base.json 2>/dev/null; then
  jq -r 'to_entries[] | "\(.key) \(.value.wall_seconds)"' BENCH_sim_wallclock.json \
  | while read -r bench fresh; do
      base=$(jq -r --arg b "$bench" '.[$b].wall_seconds // empty' target/wallclock_base.json)
      [ -z "$base" ] && { echo "   $bench: ${fresh}s (no baseline, skipped)"; continue; }
      if awk -v f="$fresh" -v b="$base" 'BEGIN { exit !(f > 3 * b) }'; then
        echo "wall-clock regression: $bench took ${fresh}s vs committed ${base}s (>3x)"
        exit 1
      fi
      echo "   $bench: ${fresh}s vs baseline ${base}s"
    done
else
  echo "   no committed BENCH_sim_wallclock.json; skipping"
fi

echo "== all checks passed"
