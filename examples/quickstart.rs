//! Quickstart: build a simulated tiered-memory machine, run HeMem on it,
//! and watch a hot working set migrate from NVM into DRAM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hemem_repro::core::backend::AccessBatch;
use hemem_repro::core::hemem::{HeMem, HeMemConfig};
use hemem_repro::core::machine::MachineConfig;
use hemem_repro::core::runtime::{Event, Sim};
use hemem_repro::sim::Ns;

const GIB: u64 = 1 << 30;

fn main() {
    // A 1/24-scale version of the paper's socket: 8 GiB DRAM + 32 GiB
    // Optane-like NVM, 24 cores. All bandwidth/latency ratios match the
    // real devices.
    let machine = MachineConfig::small(8, 32);
    let hemem = HeMem::new(HeMemConfig::scaled_for(&machine));
    let mut sim = Sim::new(machine, hemem);

    // "Allocate" a 16 GiB heap: twice DRAM. HeMem intercepts the mmap,
    // manages it on 2 MiB huge pages, and first-touch fills DRAM first.
    let region = sim.mmap(16 * GIB);
    sim.populate(region, true);
    let r = sim.m.space.region(region);
    println!(
        "after populate: {} of {} pages in DRAM",
        r.dram_pages(),
        r.mapped_pages()
    );

    // Hammer a 512 MiB slice that happens to live in NVM. PEBS samples
    // flow to HeMem's tracker; the policy thread promotes the hot pages.
    let pages = sim.m.space.region(region).page_count();
    let hot_lo = pages - 256; // last 256 huge pages = 512 MiB, NVM-resident
    let batch = AccessBatch::uniform(region, hot_lo, pages, 500_000, 8, 0.3, 16 * GIB);
    sim.set_app_threads(1);
    for _ in 0..200 {
        sim.submit_batch(0, &batch);
        while let Some((_, ev)) = sim.step() {
            if matches!(ev, Event::ThreadReady(_)) {
                break;
            }
        }
    }
    sim.advance(Ns::secs(1));

    let r = sim.m.space.region(region);
    println!(
        "after {:.2}s of virtual time: hot slice {}/{} pages in DRAM",
        sim.now().as_secs_f64(),
        r.dram_pages_in(hot_lo, pages),
        pages - hot_lo
    );
    println!(
        "samples applied: {}   migrations: {}   NVM media written: {} MiB",
        sim.backend.stats().samples_applied,
        sim.m.stats.migrations_done,
        sim.m.nvm_wear_bytes() >> 20
    );
}
