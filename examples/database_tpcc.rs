//! In-memory database scaling: Silo running TPC-C with the working set
//! swept across the DRAM-capacity knee, comparing tiered memory managers
//! (the paper's Figure 13 scenario).
//!
//! ```text
//! cargo run --release --example database_tpcc
//! ```

use hemem_repro::baselines::{AnyBackend, BackendKind};
use hemem_repro::core::machine::MachineConfig;
use hemem_repro::core::runtime::Sim;
use hemem_repro::sim::Ns;
use hemem_repro::workloads::{run_silo, SiloConfig};

fn main() {
    // 8 GiB DRAM machine: the knee is at ~36 warehouses.
    let backends = [
        BackendKind::HeMem,
        BackendKind::MemoryMode,
        BackendKind::NvmOnly,
    ];
    println!("Silo TPC-C throughput (txn/s), 8 threads\n");
    print!("{:>12}", "warehouses");
    for b in backends {
        print!("{:>14}", b.label());
    }
    println!();
    for warehouses in [8u32, 18, 27, 36, 45, 54, 72] {
        print!("{warehouses:>12}");
        for kind in backends {
            let machine = MachineConfig::small(8, 32);
            let backend = kind.build(&machine);
            let mut sim: Sim<AnyBackend> = Sim::new(machine, backend);
            let mut cfg = SiloConfig::paper(warehouses);
            cfg.threads = 8;
            cfg.warmup = Ns::secs(3);
            cfg.duration = Ns::secs(4);
            let r = run_silo(&mut sim, cfg);
            print!("{:>14.0}", r.tps);
        }
        println!();
    }
    println!(
        "\nBelow the knee every page fits in DRAM; beyond it rows spill to \
         NVM and transaction rate follows each manager's placement quality."
    );
}
