//! Key-value store tiering with per-application priority: a small
//! latency-critical store pinned to DRAM beside a large batch store that
//! uses both tiers (the paper's Table 4 scenario, §5.2.2).
//!
//! ```text
//! cargo run --release --example kvstore_tiering
//! ```

use hemem_repro::core::hemem::{HeMem, HeMemConfig};
use hemem_repro::core::machine::MachineConfig;
use hemem_repro::core::runtime::Sim;
use hemem_repro::sim::Ns;
use hemem_repro::workloads::{Kvs, KvsConfig};

const GIB: u64 = 1 << 30;

fn main() {
    let machine = MachineConfig::small(8, 32);
    let hemem = HeMem::new(HeMemConfig::scaled_for(&machine));
    let mut sim = Sim::new(machine, hemem);

    // Priority instance: pinned to DRAM via HeMem's per-application
    // policy hook (cloud operators set this per tenant).
    sim.backend.set_priority(true);
    let mut prio_cfg = KvsConfig::paper(GIB);
    prio_cfg.threads = 2;
    prio_cfg.load = 0.5;
    prio_cfg.warmup = Ns::secs(3);
    prio_cfg.duration = Ns::secs(5);
    let prio = Kvs::setup(&mut sim, prio_cfg);
    sim.backend.set_priority(false);

    let pr = sim.m.space.region(prio.log_region());
    println!(
        "priority store: {}/{} pages pinned in DRAM",
        pr.dram_pages(),
        pr.mapped_pages()
    );

    // Regular instance: 20 GiB store, tiered across DRAM + NVM.
    let mut reg_cfg = KvsConfig::paper(20 * GIB);
    reg_cfg.threads = 6;
    reg_cfg.warmup = Ns::secs(3);
    reg_cfg.duration = Ns::secs(5);
    let regular = Kvs::setup(&mut sim, reg_cfg);
    let result = regular.run(&mut sim);

    let rr = sim.m.space.region(regular.log_region());
    println!(
        "regular store:  {}/{} pages in DRAM (hot values migrate up)",
        rr.dram_pages(),
        rr.mapped_pages()
    );
    println!(
        "regular store throughput: {:.2} Mops/s, median latency {:.1} us, p99 {:.1} us",
        result.ops_per_sec / 1e6,
        result.latency_us(0.5),
        result.latency_us(0.99),
    );
    let pr = sim.m.space.region(prio.log_region());
    assert_eq!(
        pr.dram_pages(),
        pr.mapped_pages(),
        "pin survives contention"
    );
    println!("priority store still fully DRAM-resident after the regular run.");
}
