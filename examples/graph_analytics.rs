//! Graph analytics under tiered memory: betweenness centrality on a
//! Kronecker graph that exceeds DRAM, comparing HeMem against Intel
//! Memory Mode (the paper's Figure 15/16 scenario).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use hemem_repro::baselines::{AnyBackend, BackendKind};
use hemem_repro::core::machine::MachineConfig;
use hemem_repro::core::runtime::Sim;
use hemem_repro::sim::Ns;
use hemem_repro::workloads::{Bc, GraphConfig};

fn run(kind: BackendKind) -> (Vec<f64>, Vec<u64>) {
    let machine = MachineConfig::small(8, 32);
    let backend = kind.build(&machine);
    let mut sim: Sim<AnyBackend> = Sim::new(machine, backend);
    // 2^25 vertices: ~14.5 GiB of graph + auxiliary arrays vs 8 GiB DRAM.
    let mut cfg = GraphConfig::paper(25);
    cfg.iterations = 8;
    cfg.threads = 8;
    let bc = Bc::setup(&mut sim, cfg);
    sim.advance(Ns::secs(1));
    let res = bc.run(&mut sim);
    (
        res.iterations
            .iter()
            .map(|i| i.runtime.as_secs_f64())
            .collect(),
        res.iterations.iter().map(|i| i.nvm_writes >> 20).collect(),
    )
}

fn main() {
    println!("betweenness centrality, graph exceeds DRAM (8 iterations)\n");
    for kind in [BackendKind::HeMem, BackendKind::MemoryMode] {
        let (runtimes, wear) = run(kind);
        println!("{}:", kind.label());
        for (i, (rt, w)) in runtimes.iter().zip(&wear).enumerate() {
            println!(
                "  iteration {:>2}: {:>7.2}s   NVM written: {:>7} MiB",
                i + 1,
                rt,
                w
            );
        }
        let total: f64 = runtimes.iter().sum();
        println!("  total: {total:.2}s\n");
    }
    println!(
        "HeMem identifies the write-hot score arrays within the first \
         iterations and migrates them to DRAM; memory mode keeps paying \
         dirty-line write-backs to NVM on every iteration."
    );
}
